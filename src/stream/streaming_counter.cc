#include "stream/streaming_counter.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <thread>
#include <unordered_set>

#include "algorithms/parallel.h"
#include "common/check.h"
#include "common/fault_points.h"
#include "core/enumerate_core.h"
#include "core/fast_paths/fast_path.h"
#include "core/packed_table.h"
#include "obs/trace.h"

namespace tmotif {

namespace {

/// Cached registry handles for the streaming instrumentation. Looked up
/// once per process; the increments themselves are relaxed atomic adds
/// (and no-ops entirely under TMOTIF_NO_TELEMETRY).
struct StreamMetrics {
  // Whole-batch + per-phase latency histograms (nanoseconds).
  obs::Histogram* ingest_latency;
  obs::Histogram* phase1_retract;
  obs::Histogram* phase2_evict_tie;
  obs::Histogram* phase3_append_tie;
  obs::Histogram* phase4_apply;
  obs::Histogram* phase5_append_add;
  obs::Histogram* phase6_arrivals;
  obs::Histogram* store_flips;
  obs::Histogram* splice_apply;
  obs::Histogram* late_ingest;
  obs::Histogram* recount;
  /// Batch sizes (events per Ingest call).
  obs::Histogram* batch_events;
  // Point-in-time window/store levels, refreshed once per batch.
  obs::Gauge* window_events;
  obs::Gauge* store_entries;
  obs::Gauge* store_bytes;
  /// Degradation-ladder rung (StoreMode numeric value: 0 full,
  /// 1 counted-only, 2 scoped-recount).
  obs::Gauge* store_mode;
  // One counter per IngestStats field (mirrored as deltas per batch).
  obs::Counter* batches;
  obs::Counter* events_ingested;
  obs::Counter* events_dropped;
  obs::Counter* events_evicted;
  obs::Counter* instances_added;
  obs::Counter* instances_retracted;
  obs::Counter* tie_corrections;
  obs::Counter* full_recounts;
  obs::Counter* static_fallbacks;
  obs::Counter* scoped_static_recounts;
  obs::Counter* scoped_recount_roots;
  obs::Counter* store_flip_batches;
  obs::Counter* store_entries_touched;
  obs::Counter* store_admitted;
  obs::Counter* store_retired;
  obs::Counter* store_order_rechecks;
  obs::Counter* store_demotions_counted;
  obs::Counter* store_demotions_recount;
  obs::Counter* store_promotions_counted;
  obs::Counter* store_promotions_full;
  /// Mirrors LiveInstanceStore::compactions() (not an IngestStats field).
  obs::Counter* store_compactions;
  obs::Counter* late_events;
  obs::Counter* late_dropped;
  obs::Counter* late_splices;
  obs::Counter* late_recounts;

  static StreamMetrics& Get() {
    static StreamMetrics m = [] {
      obs::MetricsRegistry& r = obs::GlobalMetrics();
      StreamMetrics n;
      n.ingest_latency = r.GetHistogram("stream.ingest_latency_ns");
      n.phase1_retract = r.GetHistogram("stream.phase1_retract_latency_ns");
      n.phase2_evict_tie =
          r.GetHistogram("stream.phase2_evict_tie_latency_ns");
      n.phase3_append_tie =
          r.GetHistogram("stream.phase3_append_tie_latency_ns");
      n.phase4_apply = r.GetHistogram("stream.phase4_apply_latency_ns");
      n.phase5_append_add =
          r.GetHistogram("stream.phase5_append_add_latency_ns");
      n.phase6_arrivals =
          r.GetHistogram("stream.phase6_arrivals_latency_ns");
      n.store_flips = r.GetHistogram("stream.store_flips_latency_ns");
      n.splice_apply = r.GetHistogram("stream.splice_apply_latency_ns");
      n.late_ingest = r.GetHistogram("stream.late_ingest_latency_ns");
      n.recount = r.GetHistogram("stream.recount_latency_ns");
      n.batch_events = r.GetHistogram("stream.batch_events");
      n.window_events = r.GetGauge("stream.window_events");
      n.store_entries = r.GetGauge("stream.store_entries");
      n.store_bytes = r.GetGauge("stream.store_bytes");
      n.store_mode = r.GetGauge("stream.store_mode");
      n.batches = r.GetCounter("stream.batches");
      n.events_ingested = r.GetCounter("stream.events_ingested");
      n.events_dropped = r.GetCounter("stream.events_dropped");
      n.events_evicted = r.GetCounter("stream.events_evicted");
      n.instances_added = r.GetCounter("stream.instances_added");
      n.instances_retracted = r.GetCounter("stream.instances_retracted");
      n.tie_corrections = r.GetCounter("stream.tie_corrections");
      n.full_recounts = r.GetCounter("stream.full_recounts");
      n.static_fallbacks = r.GetCounter("stream.static_fallbacks");
      n.scoped_static_recounts =
          r.GetCounter("stream.scoped_static_recounts");
      n.scoped_recount_roots = r.GetCounter("stream.scoped_recount_roots");
      n.store_flip_batches = r.GetCounter("stream.store_flip_batches");
      n.store_entries_touched =
          r.GetCounter("stream.store_entries_touched");
      n.store_admitted = r.GetCounter("stream.store_admitted");
      n.store_retired = r.GetCounter("stream.store_retired");
      n.store_order_rechecks = r.GetCounter("stream.store_order_rechecks");
      n.store_demotions_counted =
          r.GetCounter("stream.store_demotions_counted");
      n.store_demotions_recount =
          r.GetCounter("stream.store_demotions_recount");
      n.store_promotions_counted =
          r.GetCounter("stream.store_promotions_counted");
      n.store_promotions_full = r.GetCounter("stream.store_promotions_full");
      n.store_compactions = r.GetCounter("stream.store_compactions");
      n.late_events = r.GetCounter("stream.late_events");
      n.late_dropped = r.GetCounter("stream.late_dropped");
      n.late_splices = r.GetCounter("stream.late_splices");
      n.late_recounts = r.GetCounter("stream.late_recounts");
      return n;
    }();
    return m;
  }
};

/// First event position from which an instance whose last event is at or
/// after `last_time` can start (0 when timing imposes no timespan bound).
template <typename Graph>
EventIndex FirstPossibleStart(const Graph& graph, Timestamp last_time,
                              const std::optional<Timestamp>& span) {
  if (!span.has_value()) return 0;
  return graph.LowerBoundTime(SaturatingSubtract(last_time, *span));
}

/// Applies a packed table of retracted instances to `counts` (and flushes
/// the table's probe telemetry — this is a consumption funnel).
void SubtractTable(const internal::PackedMotifTable& table,
                   MotifCounts* counts) {
  table.PublishTelemetry();
  table.ForEach([&](std::uint64_t packed, std::uint64_t n) {
    counts->Sub(internal::PackedCodeToString(packed), n);
  });
}

void AddTable(const internal::PackedMotifTable& table, MotifCounts* counts) {
  table.PublishTelemetry();
  table.ForEach([&](std::uint64_t packed, std::uint64_t n) {
    counts->Add(internal::PackedCodeToString(packed), n);
  });
}

/// Sink forwarding the full instance-identity emit (event indices + digit
/// node assignment) to a lambda — the store-population shape
/// (internal::MakeFnSink drops the node arguments).
template <typename Fn>
struct NodeFnSink {
  Fn fn;
  void Emit(const EventIndex* chosen, int num_events, std::uint64_t packed,
            const NodeId* nodes, int num_nodes) {
    fn(chosen, num_events, packed, nodes, num_nodes);
  }
};

template <typename Fn>
NodeFnSink<Fn> MakeNodeFnSink(Fn fn) {
  return NodeFnSink<Fn>{std::move(fn)};
}

/// Directed static edges among `nodes[0..num_nodes)` in the current window
/// — the scope side of the static coverage check, recomputed on demand
/// (num_nodes <= 9, so at most 72 O(out-degree) lookups; typically 6).
int ScopeStaticEdges(const WindowGraph& graph, const NodeId* nodes,
                     int num_nodes) {
  int count = 0;
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = 0; b < num_nodes; ++b) {
      if (a == b) continue;
      if (graph.FindEdge(nodes[a], nodes[b]) != WindowGraph::kNoEdgeHandle) {
        ++count;
      }
    }
  }
  return count;
}

/// Subtract-half of the append-side boundary correction: removes survivors
/// whose last event timestamp equals `t_b`, evaluated on the pre-append
/// graph (either the live WindowGraph or the survivor-only TemporalGraph of
/// the evict-tie correction, hence the template).
template <typename Graph>
void SubtractAppendTies(const Graph& graph, const EnumerationOptions& options,
                        EventIndex lo, Timestamp t_b, MotifCounts* counts) {
  internal::PackedMotifTable table;
  auto sink = internal::MakeFnSink(
      [&](const EventIndex* chosen, int k, std::uint64_t packed) {
        if (graph.event_time(chosen[k - 1]) == t_b) table.Add(packed);
      });
  internal::EnumerateCore(graph, options, lo, graph.num_events(), sink);
  SubtractTable(table, counts);
}

/// Sink of the arrival path: keeps instances whose last event entered with
/// the current batch.
struct NewInstanceSink {
  const std::vector<char>* is_new;
  internal::PackedMotifTable* table;
  void Emit(const EventIndex* chosen, int k, std::uint64_t packed,
            const NodeId*, int) {
    if (!(*is_new)[static_cast<std::size_t>(chosen[k - 1])]) return;
    table->Add(packed);
  }
};

/// Incident-entry scan budget of one scoped-recount root collection: a few
/// multiples of the window (a full recount visits every window event, so a
/// ball search costing much more than that has lost already). The floor
/// keeps tiny windows from starving the search.
std::int64_t ScopedWorkBudget(std::size_t window_size) {
  return std::max<std::int64_t>(256,
                                4 * static_cast<std::int64_t>(window_size));
}

/// True when the instance's node set contains both endpoints of at least
/// one flipped pair — the exact "affected by a static-edge flip" predicate
/// (static inducedness reads HasStaticEdge only on intra-instance pairs).
bool InstanceSpansFlippedPair(
    const WindowGraph& graph, const EventIndex* chosen, int k,
    const std::vector<std::pair<NodeId, NodeId>>& flips) {
  NodeId nodes[2 * internal::kMaxCoreEvents];
  int num_nodes = 0;
  for (int i = 0; i < k; ++i) {
    for (const NodeId n : {graph.event_src(chosen[i]),
                           graph.event_dst(chosen[i])}) {
      bool seen = false;
      for (int j = 0; j < num_nodes; ++j) {
        if (nodes[j] == n) {
          seen = true;
          break;
        }
      }
      if (!seen) nodes[num_nodes++] = n;
    }
  }
  for (const auto& [u, v] : flips) {
    bool has_u = false;
    bool has_v = false;
    for (int j = 0; j < num_nodes; ++j) {
      has_u = has_u || nodes[j] == u;
      has_v = has_v || nodes[j] == v;
    }
    if (has_u && has_v) return true;
  }
  return false;
}

/// Nodes within undirected hop distance `radius` of `center` over the
/// window's incident event lists (the instance-connectivity relation).
/// `work_budget` bounds the incident entries scanned (shared across calls,
/// decremented in place); returns false — with the ball left partial — when
/// the budget runs out, signalling the caller to fall back.
bool CollectBall(const WindowGraph& graph, NodeId center, int radius,
                 std::int64_t* work_budget, std::unordered_set<NodeId>* out) {
  out->clear();
  out->insert(center);
  std::vector<NodeId> frontier{center};
  for (int hop = 0; hop < radius && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      const auto incident = graph.incident(node);
      *work_budget -= static_cast<std::int64_t>(incident.size());
      if (*work_budget < 0) return false;
      for (const EventIndex idx : incident) {
        const NodeId src = graph.event_src(idx);
        const NodeId other = src == node ? graph.event_dst(idx) : src;
        if (out->insert(other).second) next.push_back(other);
      }
    }
    frontier = std::move(next);
  }
  return true;
}

/// First-event candidates (within [first_begin, first_end)) of instances
/// whose node set can contain both `u` and `v`: an instance spanning the
/// pair keeps every node — in particular its first event's endpoints —
/// within hop distance `radius` of *each* endpoint, so roots are events
/// with both endpoints inside the intersected balls. Returns false when
/// `work_budget` runs out.
bool AppendScopedRoots(const WindowGraph& graph, NodeId u, NodeId v,
                       int radius, EventIndex first_begin,
                       EventIndex first_end, std::int64_t* work_budget,
                       std::vector<EventIndex>* roots) {
  std::unordered_set<NodeId> ball_u;
  std::unordered_set<NodeId> ball_v;
  if (!CollectBall(graph, u, radius, work_budget, &ball_u) ||
      !CollectBall(graph, v, radius, work_budget, &ball_v)) {
    return false;
  }
  const std::unordered_set<NodeId>& small =
      ball_u.size() <= ball_v.size() ? ball_u : ball_v;
  const std::unordered_set<NodeId>& large =
      ball_u.size() <= ball_v.size() ? ball_v : ball_u;
  const auto in_both = [&](NodeId n) {
    return small.count(n) != 0 && large.count(n) != 0;
  };
  for (const NodeId node : small) {
    if (large.count(node) == 0) continue;
    const auto incident = graph.incident(node);
    *work_budget -= static_cast<std::int64_t>(incident.size());
    if (*work_budget < 0) return false;
    for (const EventIndex idx : incident) {
      if (idx < first_begin || idx >= first_end) continue;
      const NodeId src = graph.event_src(idx);
      const NodeId other = src == node ? graph.event_dst(idx) : src;
      // Dedupe events whose both endpoints are in the intersection by
      // emitting them from their source endpoint only.
      if (src != node && in_both(src)) continue;
      if (in_both(other)) roots->push_back(idx);
    }
  }
  return true;
}

}  // namespace

StreamingMotifCounter::StreamingMotifCounter(const StreamConfig& config)
    : config_(config), window_(config.window), live_(&window_) {
  TMOTIF_CHECK_MSG(config_.options.max_instances == 0,
                   "max_instances is not supported in streaming counting");
  TMOTIF_CHECK(config_.num_threads >= 1);
  TMOTIF_CHECK_MSG(config_.lateness >= 0, "lateness must be >= 0");
  internal::ValidateEnumerationOptions(config_.options);
  has_nonlocal_ = config_.options.consecutive_events_restriction ||
                  config_.options.cdg_restriction ||
                  config_.options.inducedness != Inducedness::kNone;
  uses_static_inducedness_ =
      config_.options.inducedness == Inducedness::kStatic;
  // The store factorizes validity into a purely instance-local candidate
  // predicate (connectivity, node cap, timing) and cached per-entry flags
  // for everything non-local: the static coverage check (re-evaluated per
  // flipped pair via the node-pair buckets) and, when set, the
  // consecutive/CDG order predicates (re-evaluated only at the window
  // boundaries that can change them — see IngestOrdered's store path).
  store_eligible_ = uses_static_inducedness_ &&
                    config_.static_flips == StaticFlipStrategy::kInstanceStore;
  track_tails_ = store_eligible_ &&
                 (config_.options.consecutive_events_restriction ||
                  config_.options.cdg_restriction) &&
                 config_.options.num_events >= 2;
  candidate_options_ = config_.options;
  if (store_eligible_) {
    candidate_options_.inducedness = Inducedness::kNone;
    candidate_options_.consecutive_events_restriction = false;
    candidate_options_.cdg_restriction = false;
    store_.SetTrackTails(track_tails_);
    store_.SetCompactionSlack(config_.store_compaction_slack);
  }
  if (config_.store_budget_bytes > 0) {
    TMOTIF_CHECK_MSG(config_.store_promote_fraction > 0.0 &&
                         config_.store_promote_fraction <= 1.0,
                     "store_promote_fraction must be in (0, 1]");
    TMOTIF_CHECK_MSG(config_.store_promote_batches >= 1,
                     "store_promote_batches must be >= 1");
  }
}

std::vector<std::pair<MotifCode, std::uint64_t>>
StreamingMotifCounter::TopMotifs(std::size_t limit) const {
  auto sorted = counts_.SortedByCount();
  if (limit > 0 && sorted.size() > limit) sorted.resize(limit);
  return sorted;
}

TimespanProfile StreamingMotifCounter::WindowTimespans(
    const MotifCode& code, int num_bins, Timestamp unbounded_hi) const {
  return CollectTimespans(window_graph(), config_.options, code, num_bins,
                          unbounded_hi);
}

void StreamingMotifCounter::InvalidateSnapshot() {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_valid_ = false;
}

const TemporalGraph& StreamingMotifCounter::window_graph() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (!snapshot_valid_) {
    TemporalGraphBuilder builder;
    for (const Event& e : window_.events()) builder.AddEvent(e);
    // The window is canonically sorted, so builder.Build()'s stable sort is
    // the identity and graph indices equal window positions.
    snapshot_ = builder.Build();
    snapshot_valid_ = true;
  }
  return snapshot_;
}

std::optional<Timestamp> StreamingMotifCounter::SpanBound() const {
  std::optional<Timestamp> bound;
  if (options().timing.delta_w.has_value()) bound = *options().timing.delta_w;
  if (options().timing.delta_c.has_value() && options().num_events > 1) {
    Timestamp per_gap = *options().timing.delta_c;
    if (options().duration_aware_gaps) {
      // Gaps are measured from event end times, so each may stretch by the
      // longest duration ever seen (conservative but safe).
      if (per_gap >
          std::numeric_limits<Timestamp>::max() - max_duration_seen_) {
        return bound;
      }
      per_gap += max_duration_seen_;
    }
    const Timestamp gaps = options().num_events - 1;
    if (per_gap > std::numeric_limits<Timestamp>::max() / gaps) return bound;
    const Timestamp loose = per_gap * gaps;
    bound = bound.has_value() ? std::min(*bound, loose) : loose;
  }
  return bound;
}

std::vector<std::pair<NodeId, NodeId>>
StreamingMotifCounter::CollectStaticEdgeFlips(
    std::size_t num_evict, const std::vector<Event>& added,
    std::size_t added_begin) const {
  struct EdgeDelta {
    NodeId src;
    NodeId dst;
    int delta = 0;
  };
  // An ordered map keeps the flip list deterministic (sorted by pair key).
  std::map<std::uint64_t, EdgeDelta> deltas;
  for (std::size_t i = 0; i < num_evict; ++i) {
    const Event& e = window_.event(i);
    auto& d = deltas[NodePairKey(e.src, e.dst)];
    d.src = e.src;
    d.dst = e.dst;
    --d.delta;
  }
  for (std::size_t i = added_begin; i < added.size(); ++i) {
    const Event& e = added[i];
    auto& d = deltas[NodePairKey(e.src, e.dst)];
    d.src = e.src;
    d.dst = e.dst;
    ++d.delta;
  }
  std::vector<std::pair<NodeId, NodeId>> flips;
  for (const auto& [key, d] : deltas) {
    (void)key;
    const std::int64_t before =
        static_cast<std::int64_t>(live_.NumEdgeEvents(d.src, d.dst));
    const std::int64_t after = before + d.delta;
    if ((before > 0) != (after > 0)) flips.emplace_back(d.src, d.dst);
  }
  return flips;
}

bool StreamingMotifCounter::CollectFlipRoots(
    const std::vector<std::pair<NodeId, NodeId>>& flips,
    EventIndex first_begin, EventIndex first_end, std::int64_t* work_budget,
    std::vector<EventIndex>* roots) const {
  const int radius = options().max_nodes - 1;
  roots->clear();
  for (const auto& [u, v] : flips) {
    if (!AppendScopedRoots(live_, u, v, radius, first_begin, first_end,
                           work_budget, roots)) {
      return false;
    }
  }
  std::sort(roots->begin(), roots->end());
  roots->erase(std::unique(roots->begin(), roots->end()), roots->end());
  return true;
}

void StreamingMotifCounter::SubtractFlipAffected(
    const std::vector<std::pair<NodeId, NodeId>>& flips,
    const std::vector<EventIndex>& roots) {
  stats_.scoped_recount_roots += roots.size();
  internal::PackedMotifTable removed;
  auto sink = internal::MakeFnSink(
      [&](const EventIndex* chosen, int k, std::uint64_t packed) {
        if (InstanceSpansFlippedPair(live_, chosen, k, flips)) {
          removed.Add(packed);
        }
      });
  internal::EnumerateCoreAtRoots(live_, config_.options, roots, sink);
  SubtractTable(removed, &counts_);
}

bool StreamingMotifCounter::AddFlipAffected(
    const std::vector<std::pair<NodeId, NodeId>>& flips,
    EventIndex first_new) {
  std::int64_t budget = ScopedWorkBudget(window_.size());
  std::vector<EventIndex> roots;
  // Roots past `first_new` can only anchor instances whose last event is
  // new — the sink would discard every one of them (phase 6 owns arriving
  // instances), so collecting them would just burn budget and inflate the
  // locality estimate.
  if (!CollectFlipRoots(flips, 0, first_new, &budget, &roots) ||
      2 * roots.size() >= window_.size()) {
    return false;
  }
  stats_.scoped_recount_roots += roots.size();
  internal::PackedMotifTable added;
  auto sink = internal::MakeFnSink(
      [&](const EventIndex* chosen, int k, std::uint64_t packed) {
        // Instances ending in a new event are phase 6's: they were never
        // counted before this batch, under either edge set.
        if (is_new_[static_cast<std::size_t>(chosen[k - 1])]) return;
        if (InstanceSpansFlippedPair(live_, chosen, k, flips)) {
          added.Add(packed);
        }
      });
  internal::EnumerateCoreAtRoots(live_, config_.options, roots, sink);
  AddTable(added, &counts_);
  return true;
}

void StreamingMotifCounter::RecountWindow() {
  obs::PhaseTimer span(StreamMetrics::Get().recount, "stream.recount");
  live_.Reset();
  id_offset_ = 0;
  counts_ = MotifCounts();
  ++stats_.full_recounts;
  if (store_active()) {
    RebuildStore();
  } else if (internal::fast_paths::FastPathSupported(config_.options)) {
    internal::fast_paths::NoteDispatch(true);
    internal::PackedMotifTable table;
    internal::fast_paths::CountRangeInto(live_, config_.options, 0,
                                         live_.num_events(), &table);
    AddTable(table, &counts_);
  } else {
    AddTable(internal::CountPackedSharded(live_, config_.options, 0,
                                          live_.num_events(),
                                          config_.num_threads),
             &counts_);
  }
}

void StreamingMotifCounter::ApplyAndRecount(const IngestPlan& plan,
                                            const std::vector<Event>& batch,
                                            bool is_static_fallback) {
  window_.Apply(plan, batch);
  InvalidateSnapshot();
  RecountWindow();
  if (is_static_fallback) ++stats_.static_fallbacks;
}

void StreamingMotifCounter::AddNewInstances(EventIndex begin) {
  internal::PackedMotifTable added;
  if (internal::fast_paths::FastPathSupported(config_.options)) {
    internal::fast_paths::NoteDispatch(true);
    // Suffix difference with an exclude-new filter: every instance that
    // contains a new event ends in one (no old event follows a new one in
    // time), so [begin, N) counted over all events minus the same window
    // counted over old events only is exactly the arrivals, per code.
    const EventIndex n = live_.num_events();
    const auto all = [](EventIndex) { return true; };
    const auto old_only = [this](EventIndex i) {
      return is_new_[static_cast<std::size_t>(i)] == 0;
    };
    internal::fast_paths::CodeDeltas deltas;
    internal::fast_paths::AccumulateWindow(live_, config_.options, begin, n,
                                           all, +1, &deltas);
    internal::fast_paths::AccumulateWindow(live_, config_.options, begin, n,
                                           old_only, -1, &deltas);
    for (const auto& [code, delta] : deltas) {
      TMOTIF_CHECK(delta >= 0);
      if (delta > 0) added.Add(code, static_cast<std::uint64_t>(delta));
    }
  } else {
    internal::fast_paths::NoteDispatch(false);
    added = internal::CountPackedShardedWith(
        live_, config_.options, begin, live_.num_events(),
        config_.num_threads, [this](internal::PackedMotifTable* table) {
          return NewInstanceSink{&is_new_, table};
        });
  }
  stats_.instances_added += added.total();
  AddTable(added, &counts_);
}

// --- Live-instance store path. ---

void StreamingMotifCounter::RebuildStore() {
  // Anchors restart at the current id base (zero on the recount path; the
  // live offset on promotion/restore rebuilds, where the window survives).
  store_.Reset(id_offset_);
  // A rebuild is a recount, not delta churn: instances_added stays
  // untouched, matching the non-store recount path.
  StoreAddCandidates(0, live_.num_events(),
                     [](const EventIndex*, int) { return true; },
                     /*count_churn=*/false);
}

template <typename Keep>
void StreamingMotifCounter::StoreAddCandidates(EventIndex lo, EventIndex hi,
                                               Keep keep, bool count_churn) {
  struct Candidate {
    std::array<std::uint64_t, internal::kMaxCoreEvents> ids;
    std::array<NodeId, internal::kMaxCoreNodes> nodes;
    std::uint64_t packed;
    std::int8_t num_events;
    std::int8_t num_nodes;
    std::int8_t distinct_pairs;
    bool covered;
    bool order_valid;
  };
  // All validity flags are evaluated here, against the quiescent live
  // indices — read-only, so workers can evaluate concurrently.
  const auto evaluate = [this](const EventIndex* chosen, int k,
                               std::uint64_t packed, const NodeId* nodes,
                               int num_nodes, Candidate* c) {
    for (int i = 0; i < k; ++i) {
      c->ids[static_cast<std::size_t>(i)] =
          id_offset_ + static_cast<std::uint64_t>(chosen[i]);
    }
    for (int d = 0; d < num_nodes; ++d) {
      c->nodes[static_cast<std::size_t>(d)] = nodes[d];
    }
    c->packed = packed;
    c->num_events = static_cast<std::int8_t>(k);
    c->num_nodes = static_cast<std::int8_t>(num_nodes);
    const int distinct = internal::PackedDistinctPairCount(packed, k);
    c->distinct_pairs = static_cast<std::int8_t>(distinct);
    c->covered = distinct == ScopeStaticEdges(live_, nodes, num_nodes);
    c->order_valid =
        !track_tails_ || OrderValidAt(chosen, k, nodes, num_nodes);
  };
  internal::PackedMotifTable added;
  const auto insert = [&](const Candidate& c) {
    const bool counted = c.covered && c.order_valid;
    // Counted-only degraded mode: uncounted candidates stay out of the
    // store (a later flip re-derives them from its scope on admission).
    if (store_mode_ == StoreMode::kCountedOnly && !counted) return;
    store_.Insert(c.ids.data(), c.num_events, c.packed, c.nodes.data(),
                  c.num_nodes, c.distinct_pairs, c.covered, c.order_valid);
    if (counted) added.Add(c.packed);
  };
  if (config_.num_threads > 1 && hi - lo >= 64) {
    // Sharded population: workers enumerate disjoint first-event ranges and
    // evaluate candidates; insertion stays serial, in shard order, so ids,
    // slot order and bucket order are identical to a serial run.
    const auto shards = MakeEventShards(lo, hi, config_.num_threads);
    std::vector<std::vector<Candidate>> partials(shards.size());
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      workers.emplace_back([&, s] {
        auto sink = MakeNodeFnSink([&, s](const EventIndex* chosen, int k,
                                          std::uint64_t packed,
                                          const NodeId* nodes, int num_nodes) {
          if (!keep(chosen, k)) return;
          partials[s].emplace_back();
          evaluate(chosen, k, packed, nodes, num_nodes, &partials[s].back());
        });
        internal::EnumerateCore(live_, candidate_options_, shards[s].first,
                                shards[s].second, sink);
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::vector<Candidate>& partial : partials) {
      for (const Candidate& c : partial) insert(c);
    }
  } else {
    auto sink = MakeNodeFnSink([&](const EventIndex* chosen, int k,
                                   std::uint64_t packed, const NodeId* nodes,
                                   int num_nodes) {
      if (!keep(chosen, k)) return;
      Candidate c;
      evaluate(chosen, k, packed, nodes, num_nodes, &c);
      insert(c);
    });
    internal::EnumerateCore(live_, candidate_options_, lo, hi, sink);
  }
  if (count_churn) stats_.instances_added += added.total();
  AddTable(added, &counts_);
}

void StreamingMotifCounter::StoreEvict(std::size_t num_evict) {
  internal::PackedMotifTable retired;
  store_.EvictFront(num_evict, [&](const LiveInstanceStore::Entry& entry) {
    if (entry.counted) retired.Add(entry.packed);
  });
  stats_.instances_retracted += retired.total();
  SubtractTable(retired, &counts_);
}

void StreamingMotifCounter::StoreProcessFlips(
    const std::vector<std::pair<NodeId, NodeId>>& flips) {
  if (flips.empty()) return;
  const std::uint64_t stamp = store_.NextVisitStamp();
  internal::PackedMotifTable admitted;
  internal::PackedMotifTable retired;
  for (const auto& [u, v] : flips) {
    store_.ForEachTouching(u, v, [&](LiveInstanceStore::Entry& entry) {
      if (entry.visit_stamp == stamp) return;  // Touched via another flip.
      entry.visit_stamp = stamp;
      ++stats_.store_entries_touched;
      const bool covered =
          entry.distinct_pairs ==
          ScopeStaticEdges(live_, entry.nodes.data(), entry.num_nodes);
      if (covered == entry.covered) return;
      entry.covered = covered;
      const bool counted = covered && entry.order_valid;
      if (counted == entry.counted) return;
      entry.counted = counted;
      store_.NoteCountedChange(counted);
      if (counted) {
        admitted.Add(entry.packed);
      } else {
        retired.Add(entry.packed);
      }
    });
  }
  stats_.store_admitted += admitted.total();
  stats_.store_retired += retired.total();
  ++stats_.store_flip_batches;
  AddTable(admitted, &counts_);
  SubtractTable(retired, &counts_);
}

template <typename Skip>
bool StreamingMotifCounter::StoreProcessFlipsCountedOnly(
    const std::vector<std::pair<NodeId, NodeId>>& flips, Skip skip) {
  if (flips.empty()) return true;
  // Extraction half: every stored entry spanning a flipped pair comes out
  // wholesale (the store holds only counted entries in this mode). The same
  // population re-enters below at post-flip validity, so physical removal
  // means the re-derivation never needs an identity check against the
  // store — a spanning candidate is re-derived exactly once, even when it
  // spans several flipped pairs.
  internal::PackedMotifTable retired;
  for (const auto& [u, v] : flips) {
    store_.ExtractTouching(u, v, [&](const LiveInstanceStore::Entry& entry) {
      ++stats_.store_entries_touched;
      if (entry.counted) retired.Add(entry.packed);
    });
  }
  // Re-derivation half borrows the scoped-recount root machinery: every
  // candidate whose node set can span a flipped pair starts at an event
  // inside the intersected hop-balls of the pair's endpoints.
  std::int64_t budget = ScopedWorkBudget(window_.size());
  std::vector<EventIndex> roots;
  if (!CollectFlipRoots(flips, 0, live_.num_events(), &budget, &roots) ||
      2 * roots.size() >= window_.size()) {
    // Localization failed; the caller recounts the window, which rebuilds
    // the store and counts from scratch — the half-applied extraction above
    // is discarded wholesale, so nothing needs undoing here.
    return false;
  }
  stats_.scoped_recount_roots += roots.size();
  SubtractTable(retired, &counts_);
  internal::PackedMotifTable admitted;
  auto sink = MakeNodeFnSink([&](const EventIndex* chosen, int k,
                                 std::uint64_t packed, const NodeId* nodes,
                                 int num_nodes) {
    if (skip(chosen, k)) return;  // Another phase owns these instances.
    bool spans = false;
    for (const auto& [u, v] : flips) {
      bool has_u = false;
      bool has_v = false;
      for (int j = 0; j < num_nodes; ++j) {
        has_u = has_u || nodes[j] == u;
        has_v = has_v || nodes[j] == v;
      }
      if (has_u && has_v) {
        spans = true;
        break;
      }
    }
    if (!spans) return;
    const int distinct = internal::PackedDistinctPairCount(packed, k);
    if (distinct != ScopeStaticEdges(live_, nodes, num_nodes)) return;
    std::uint64_t ids[internal::kMaxCoreEvents];
    for (int i = 0; i < k; ++i) {
      ids[i] = id_offset_ + static_cast<std::uint64_t>(chosen[i]);
    }
    // Counted-only never runs with tail tracking (order predicates demote
    // straight past this rung), so order validity is vacuously true.
    store_.Insert(ids, k, packed, nodes, num_nodes, distinct,
                  /*covered=*/true, /*order_valid=*/true);
    admitted.Add(packed);
  });
  internal::EnumerateCoreAtRoots(live_, candidate_options_, roots, sink);
  stats_.store_admitted += admitted.total();
  stats_.store_retired += retired.total();
  ++stats_.store_flip_batches;
  AddTable(admitted, &counts_);
  return true;
}

bool StreamingMotifCounter::OrderValidAt(const EventIndex* pos, int k,
                                         const NodeId* nodes,
                                         int num_nodes) const {
  // Mirrors the enumeration core's per-candidate checks exactly
  // (core/enumerate_core.h): CDG rejects another event on a gap's closing
  // edge inside the closed gap interval (same-edge gaps exempt);
  // consecutive rejects any interloper strictly between a node's successive
  // instance touches.
  if (config_.options.cdg_restriction) {
    for (int i = 1; i < k; ++i) {
      const EventIndex a = pos[i - 1];
      const EventIndex b = pos[i];
      if (live_.event_src(a) == live_.event_src(b) &&
          live_.event_dst(a) == live_.event_dst(b)) {
        continue;
      }
      if (live_.HasAdjacentEdgeEventInRange(b, live_.event_time(a),
                                            live_.event_time(b))) {
        return false;
      }
    }
  }
  if (config_.options.consecutive_events_restriction) {
    for (int d = 0; d < num_nodes; ++d) {
      const NodeId node = nodes[d];
      EventIndex prev = -1;
      for (int i = 0; i < k; ++i) {
        const EventIndex p = pos[i];
        if (live_.event_src(p) != node && live_.event_dst(p) != node) {
          continue;
        }
        if (prev >= 0 && live_.HasIncidentInIndexRange(node, prev, p)) {
          return false;
        }
        prev = p;
      }
    }
  }
  return true;
}

void StreamingMotifCounter::ReevaluateTailOrder(std::uint64_t id_begin,
                                                std::uint64_t id_end) {
  internal::PackedMotifTable admitted;
  internal::PackedMotifTable retired;
  store_.ForEachTailAnchored(
      id_begin, id_end,
      [&](LiveInstanceStore::Entry& entry, std::uint64_t tail_id) {
        // The tail slot is positional truth: interleaved arrivals shifted
        // this entry's last event in lockstep with the slot.
        entry.event_ids[static_cast<std::size_t>(entry.num_events - 1)] =
            tail_id;
        ++stats_.store_order_rechecks;
        EventIndex pos[internal::kMaxCoreEvents];
        for (int i = 0; i < entry.num_events; ++i) {
          pos[i] = static_cast<EventIndex>(
              entry.event_ids[static_cast<std::size_t>(i)] - id_offset_);
        }
        const bool valid = OrderValidAt(pos, entry.num_events,
                                        entry.nodes.data(), entry.num_nodes);
        if (valid == entry.order_valid) return;
        entry.order_valid = valid;
        const bool counted = entry.covered && valid;
        if (counted == entry.counted) return;
        entry.counted = counted;
        store_.NoteCountedChange(counted);
        if (counted) {
          admitted.Add(entry.packed);
        } else {
          retired.Add(entry.packed);
        }
      });
  stats_.store_admitted += admitted.total();
  stats_.store_retired += retired.total();
  AddTable(admitted, &counts_);
  SubtractTable(retired, &counts_);
}

void StreamingMotifCounter::ReevaluateAnchorOrder(std::uint64_t id_begin,
                                                  std::uint64_t id_end) {
  internal::PackedMotifTable admitted;
  internal::PackedMotifTable retired;
  store_.ForEachAnchoredInRange(
      id_begin, id_end, [&](LiveInstanceStore::Entry& entry) {
        ++stats_.store_order_rechecks;
        EventIndex pos[internal::kMaxCoreEvents];
        for (int i = 0; i < entry.num_events; ++i) {
          pos[i] = static_cast<EventIndex>(
              entry.event_ids[static_cast<std::size_t>(i)] - id_offset_);
        }
        const bool valid = OrderValidAt(pos, entry.num_events,
                                        entry.nodes.data(), entry.num_nodes);
        if (valid == entry.order_valid) return;
        entry.order_valid = valid;
        const bool counted = entry.covered && valid;
        if (counted == entry.counted) return;
        entry.counted = counted;
        store_.NoteCountedChange(counted);
        if (counted) {
          admitted.Add(entry.packed);
        } else {
          retired.Add(entry.packed);
        }
      });
  stats_.store_admitted += admitted.total();
  stats_.store_retired += retired.total();
  AddTable(admitted, &counts_);
  SubtractTable(retired, &counts_);
}

// --- Ingestion. ---

void StreamingMotifCounter::Ingest(std::vector<Event> batch) {
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.batch_events->Record(batch.size());
  obs::PhaseTimer ingest_span(metrics.ingest_latency, "stream.ingest");
  std::stable_sort(batch.begin(), batch.end(), EventTimeLess);
  for (const Event& e : batch) {
    TMOTIF_CHECK_MSG(e.src != e.dst,
                     "self-loop events must be filtered before ingestion");
  }
  ++stats_.batches;
  stats_.events_ingested += batch.size();

  // Split off genuinely late events (strictly behind the stream clock):
  // in-horizon ones are spliced, the rest dropped. The remainder is the
  // in-order suffix the standard delta path ingests.
  std::size_t ordered_begin = 0;
  if (window_.saw_any_event()) {
    const Timestamp clock = window_.max_time_seen();
    while (ordered_begin < batch.size() &&
           batch[ordered_begin].time < clock) {
      ++ordered_begin;
    }
    if (ordered_begin > 0) {
      const Timestamp cutoff = SaturatingSubtract(clock, config_.lateness);
      std::size_t accept_begin = 0;
      while (accept_begin < ordered_begin &&
             batch[accept_begin].time < cutoff) {
        ++accept_begin;
      }
      stats_.late_dropped += accept_begin;
      if (accept_begin < ordered_begin) {
        IngestLate(std::vector<Event>(
            batch.begin() + static_cast<std::ptrdiff_t>(accept_begin),
            batch.begin() + static_cast<std::ptrdiff_t>(ordered_begin)));
      }
    }
  }
  if (ordered_begin == 0) {
    IngestOrdered(batch);
  } else if (ordered_begin < batch.size()) {
    IngestOrdered(std::vector<Event>(
        batch.begin() + static_cast<std::ptrdiff_t>(ordered_begin),
        batch.end()));
  }
  EnforceStoreBudget();
  PublishTelemetry();
}

void StreamingMotifCounter::PublishTelemetry() {
  StreamMetrics& metrics = StreamMetrics::Get();
#define TMOTIF_PUBLISH_FIELD(field) \
  metrics.field->Add(stats_.field - published_stats_.field)
  TMOTIF_PUBLISH_FIELD(batches);
  TMOTIF_PUBLISH_FIELD(events_ingested);
  TMOTIF_PUBLISH_FIELD(events_dropped);
  TMOTIF_PUBLISH_FIELD(events_evicted);
  TMOTIF_PUBLISH_FIELD(instances_added);
  TMOTIF_PUBLISH_FIELD(instances_retracted);
  TMOTIF_PUBLISH_FIELD(tie_corrections);
  TMOTIF_PUBLISH_FIELD(full_recounts);
  TMOTIF_PUBLISH_FIELD(static_fallbacks);
  TMOTIF_PUBLISH_FIELD(scoped_static_recounts);
  TMOTIF_PUBLISH_FIELD(scoped_recount_roots);
  TMOTIF_PUBLISH_FIELD(store_flip_batches);
  TMOTIF_PUBLISH_FIELD(store_entries_touched);
  TMOTIF_PUBLISH_FIELD(store_admitted);
  TMOTIF_PUBLISH_FIELD(store_retired);
  TMOTIF_PUBLISH_FIELD(store_order_rechecks);
  TMOTIF_PUBLISH_FIELD(store_demotions_counted);
  TMOTIF_PUBLISH_FIELD(store_demotions_recount);
  TMOTIF_PUBLISH_FIELD(store_promotions_counted);
  TMOTIF_PUBLISH_FIELD(store_promotions_full);
  TMOTIF_PUBLISH_FIELD(late_events);
  TMOTIF_PUBLISH_FIELD(late_dropped);
  TMOTIF_PUBLISH_FIELD(late_splices);
  TMOTIF_PUBLISH_FIELD(late_recounts);
#undef TMOTIF_PUBLISH_FIELD
  published_stats_ = stats_;
  metrics.store_compactions->Add(store_.compactions() -
                                 published_store_compactions_);
  published_store_compactions_ = store_.compactions();
  metrics.window_events->Set(static_cast<std::int64_t>(window_.size()));
  metrics.store_entries->Set(static_cast<std::int64_t>(store_.size()));
  metrics.store_bytes->Set(
      static_cast<std::int64_t>(store_active() ? store_.ApproxBytes() : 0));
  metrics.store_mode->Set(static_cast<std::int64_t>(store_mode_));
}

void StreamingMotifCounter::IngestOrdered(const std::vector<Event>& batch) {
  StreamMetrics& metrics = StreamMetrics::Get();
  const IngestPlan plan = window_.PlanIngest(batch);
  const std::size_t old_size = window_.size();
  const std::size_t num_new = batch.size() - plan.batch_begin;
  stats_.events_dropped += plan.batch_begin;
  stats_.events_evicted += plan.num_evict;
  // Only events that actually enter widen the duration-aware span bound;
  // a dropped outlier must not degrade every later delta range.
  for (std::size_t i = plan.batch_begin; i < batch.size(); ++i) {
    max_duration_seen_ = std::max(max_duration_seen_, batch[i].duration);
  }

  if (num_new == 0 && plan.num_evict == 0) {
    window_.Apply(plan, batch);  // Still advances the stream clock; the
    return;                      // window content (and indices) is unchanged.
  }

  // Full window turnover (including startup) recounts from scratch — there
  // is nothing incremental to preserve.
  if (plan.num_evict >= old_size) {
    ApplyAndRecount(plan, batch, /*is_static_fallback=*/false);
    return;
  }

  const std::optional<Timestamp> span = SpanBound();
  const EventIndex n_evict = static_cast<EventIndex>(plan.num_evict);

  if (store_active()) {
    // Store path: candidate validity is instance-local, so survivors never
    // flip as candidates. The store absorbs every static-edge flip by
    // retiring/admitting exactly the instances whose node set spans a
    // flipped pair, and caches the order predicates (consecutive/CDG) per
    // entry — those can only flip for entries whose first event ties the
    // eviction boundary (an evicted same-time interloper can un-violate a
    // CDG gap) or whose last event ties the arriving batch's earliest
    // timestamp (an interleaving arrival can violate the final gap), so
    // two boundary sweeps over the tie groups keep every flag exact. The
    // only enumerations left are the same retract/add deltas every model
    // pays.
    const std::vector<std::pair<NodeId, NodeId>> flips =
        CollectStaticEdgeFlips(plan.num_evict, batch, plan.batch_begin);
    const bool evict_tie =
        n_evict > 0 &&
        live_.event_time(n_evict - 1) == live_.event_time(n_evict);
    const Timestamp t_ev = n_evict > 0 ? live_.event_time(n_evict - 1) : 0;
    const Timestamp old_surviving_max =
        live_.event_time(static_cast<EventIndex>(old_size) - 1);
    const bool append_tie =
        num_new > 0 && batch[plan.batch_begin].time == old_surviving_max;
    if (n_evict > 0) StoreEvict(plan.num_evict);
    {
      obs::PhaseTimer span(metrics.phase4_apply, "stream.phase4_apply");
      live_.BeginUpdate(plan, batch);
      window_.Apply(plan, batch, &new_positions_);
      live_.FinishUpdate();
    }
    id_offset_ += plan.num_evict;
    // Batch events interleaving within the trailing tie group renumber the
    // resident tie-group events; opening store slots at the entered ids
    // (ascending, so each insertion accounts for the previous) shifts the
    // anchored entries in lockstep — anchors for k == 1, tails always.
    for (const std::size_t p : new_positions_) {
      store_.SpliceSlot(id_offset_ + p);
    }
    InvalidateSnapshot();
    is_new_.assign(window_.size(), 0);
    for (const std::size_t p : new_positions_) is_new_[p] = 1;
    {
      obs::PhaseTimer span(metrics.store_flips, "stream.store_flips");
      if (store_mode_ == StoreMode::kCountedOnly) {
        // Post-apply edge state; instances ending in a new event are
        // phase 6's either way, so the re-derivation skips them.
        if (!StoreProcessFlipsCountedOnly(
                flips, [this](const EventIndex* chosen, int k) {
                  return is_new_[static_cast<std::size_t>(chosen[k - 1])] != 0;
                })) {
          RecountWindow();
          ++stats_.static_fallbacks;
          return;
        }
      } else {
        StoreProcessFlips(flips);  // Post-apply edge state.
      }
    }
    if (track_tails_ && append_tie) {
      ReevaluateTailOrder(
          id_offset_ + static_cast<std::uint64_t>(
                           live_.LowerBoundTime(old_surviving_max)),
          id_offset_ + static_cast<std::uint64_t>(
                           live_.UpperBoundTime(old_surviving_max)));
    }
    if (track_tails_ && config_.options.cdg_restriction && evict_tie) {
      ReevaluateAnchorOrder(
          id_offset_,
          id_offset_ + static_cast<std::uint64_t>(live_.UpperBoundTime(t_ev)));
    }
    if (num_new > 0) {
      obs::PhaseTimer phase_span(metrics.phase6_arrivals,
                                 "stream.phase6_arrivals");
      const Timestamp min_new_time = batch[plan.batch_begin].time;
      StoreAddCandidates(
          FirstPossibleStart(live_, min_new_time, span), live_.num_events(),
          [this](const EventIndex* chosen, int k) {
            return is_new_[static_cast<std::size_t>(chosen[k - 1])] != 0;
          });
    }
    return;
  }

  // Survivors can only flip validity at shared boundary timestamps (or via
  // static-edge flips, handled below): an evicted or arriving event lies
  // inside a surviving instance's scope only when it ties the instance's
  // first or last timestamp. See docs/STREAMING.md for the case analysis.
  const bool evict_tie =
      n_evict > 0 && live_.event_time(n_evict - 1) == live_.event_time(n_evict);
  const Timestamp old_surviving_max =
      live_.event_time(static_cast<EventIndex>(old_size) - 1);
  const bool append_tie =
      num_new > 0 && batch[plan.batch_begin].time == old_surviving_max;

  // Static inducedness without the store (scoped-recount strategy): when
  // the window's static edge set changes, survivor instances whose node set
  // spans a flipped pair change validity. The scoped correction subtracts exactly those
  // instances at pre-flip validity here and re-adds them at post-flip
  // validity after the window slides — a neighborhood-restricted recount.
  // The full-window fallback remains for batches where a flip coincides
  // with a boundary tie (the two corrections would overlap), where the flip
  // set is too large to localize cheaply, or where the collected root set
  // approaches the window itself (the scoped passes would cost more than
  // one recount).
  std::vector<std::pair<NodeId, NodeId>> flips;
  if (uses_static_inducedness_) {
    flips = CollectStaticEdgeFlips(plan.num_evict, batch, plan.batch_begin);
  }
  if (!flips.empty()) {
    constexpr std::size_t kMaxScopedFlips = 32;
    std::vector<EventIndex> flip_roots;
    bool scoped = !evict_tie && !append_tie && flips.size() <= kMaxScopedFlips;
    if (scoped) {
      std::int64_t budget = ScopedWorkBudget(old_size);
      // The scoped correction enumerates each root twice (subtract + add);
      // a full recount enumerates every window event once.
      scoped = CollectFlipRoots(flips, n_evict,
                                static_cast<EventIndex>(old_size), &budget,
                                &flip_roots) &&
               2 * flip_roots.size() < old_size;
    }
    if (!scoped) {
      ApplyAndRecount(plan, batch, /*is_static_fallback=*/true);
      return;
    }
    SubtractFlipAffected(flips, flip_roots);
  }

  // Phase 1 — retract instances anchored at evicted events. The evicted
  // events form a canonical prefix, so an instance loses an event exactly
  // when its first event is evicted. Runs on the live pre-update indices.
  if (n_evict > 0) {
    obs::PhaseTimer phase_span(metrics.phase1_retract,
                               "stream.phase1_retract");
    internal::PackedMotifTable retracted;
    if (internal::fast_paths::FastPathSupported(config_.options)) {
      internal::fast_paths::NoteDispatch(true);
      // Prefix-window difference: every instance anchored in [0, n_evict)
      // fits inside [0, hi1) (the span bound caps how far its last event
      // can reach), so counting that window with and without the evicted
      // prefix isolates exactly the retractions, per code.
      const EventIndex hi1 =
          span.has_value()
              ? live_.UpperBoundTime(internal::fast_paths::detail::SatAdd(
                    live_.event_time(n_evict - 1), *span))
              : live_.num_events();
      const auto all = [](EventIndex) { return true; };
      internal::fast_paths::CodeDeltas deltas;
      internal::fast_paths::AccumulateWindow(live_, config_.options, 0, hi1,
                                             all, +1, &deltas);
      internal::fast_paths::AccumulateWindow(live_, config_.options, n_evict,
                                             hi1, all, -1, &deltas);
      for (const auto& [code, delta] : deltas) {
        TMOTIF_CHECK(delta >= 0);
        if (delta > 0) {
          retracted.Add(code, static_cast<std::uint64_t>(delta));
        }
      }
    } else {
      internal::PackedTableSink sink{&retracted};
      internal::EnumerateCore(live_, config_.options, 0, n_evict, sink);
    }
    stats_.instances_retracted += retracted.total();
    SubtractTable(retracted, &counts_);
  }

  // Phase 2 — evict-side boundary correction: survivors whose first event
  // shares the eviction boundary timestamp are re-evaluated without the
  // evicted tie events.
  TemporalGraph mid;  // Survivor-only graph, built only when needed (rare).
  bool use_mid = false;
  if (has_nonlocal_ && evict_tie) {
    obs::PhaseTimer phase_span(metrics.phase2_evict_tie,
                               "stream.phase2_evict_tie");
    const Timestamp t_ev = live_.event_time(n_evict - 1);
    const EventIndex tie_end = live_.UpperBoundTime(t_ev);
    {
      internal::PackedMotifTable table;
      internal::PackedTableSink sink{&table};
      internal::EnumerateCore(live_, config_.options, n_evict, tie_end, sink);
      SubtractTable(table, &counts_);
    }
    TemporalGraphBuilder builder;
    for (std::size_t i = plan.num_evict; i < old_size; ++i) {
      builder.AddEvent(window_.event(i));
    }
    mid = builder.Build();
    use_mid = true;
    {
      internal::PackedMotifTable table;
      internal::PackedTableSink sink{&table};
      internal::EnumerateCore(mid, config_.options, 0, tie_end - n_evict,
                              sink);
      AddTable(table, &counts_);
    }
    ++stats_.tie_corrections;
  }

  // Phase 3 — append-side boundary correction, subtract half: survivors
  // whose last event ties the arriving batch's earliest timestamp are
  // removed at their pre-append validity (re-added at post-append validity
  // in phase 5). Timing bounds the first-event range.
  if (has_nonlocal_ && append_tie) {
    obs::PhaseTimer phase_span(metrics.phase3_append_tie,
                               "stream.phase3_append_tie");
    const Timestamp t_b = old_surviving_max;
    if (use_mid) {
      const EventIndex lo = FirstPossibleStart(mid, t_b, span);
      SubtractAppendTies(mid, config_.options, lo, t_b, &counts_);
    } else {
      const EventIndex lo =
          std::max(n_evict, FirstPossibleStart(live_, t_b, span));
      SubtractAppendTies(live_, config_.options, lo, t_b, &counts_);
    }
    ++stats_.tie_corrections;
  }

  // Phase 4 — slide the window and update the live indices incrementally
  // (O(evicted + tie group + entered); no window-graph rebuild).
  {
    obs::PhaseTimer phase_span(metrics.phase4_apply, "stream.phase4_apply");
    live_.BeginUpdate(plan, batch);
    window_.Apply(plan, batch, &new_positions_);
    live_.FinishUpdate();
  }
  id_offset_ += plan.num_evict;
  InvalidateSnapshot();
  is_new_.assign(window_.size(), 0);
  for (const std::size_t p : new_positions_) is_new_[p] = 1;

  // Scoped static-flip correction, add-back half: flip-affected survivors
  // re-enter at their validity under the new edge set (instances with a new
  // last event are phase 6's, under the new edge set either way).
  if (!flips.empty()) {
    // Tie-free batch: the entering events are strictly later than every
    // survivor, so they occupy the window's suffix.
    const EventIndex first_new =
        static_cast<EventIndex>(window_.size() - num_new);
    if (!AddFlipAffected(flips, first_new)) {
      // The post-apply neighborhood blew its budget (rare: arrivals grew a
      // flip's ball past the locality threshold). The window has already
      // slid, so recount it outright — that subsumes phase 6.
      RecountWindow();
      ++stats_.static_fallbacks;
      return;
    }
    ++stats_.scoped_static_recounts;
  }

  // Phase 5 — append-side boundary correction, add-back half, evaluated on
  // the post-append window. An instance whose last event is old contains no
  // new event at all (no old event can follow a new one in time), so these
  // are exactly the survivors the subtract half removed.
  if (has_nonlocal_ && append_tie) {
    obs::PhaseTimer phase_span(metrics.phase5_append_add,
                               "stream.phase5_append_add");
    const Timestamp t_b = old_surviving_max;
    const EventIndex lo = FirstPossibleStart(live_, t_b, span);
    const EventIndex hi = live_.UpperBoundTime(t_b);
    internal::PackedMotifTable table;
    auto sink = internal::MakeFnSink(
        [&](const EventIndex* chosen, int k, std::uint64_t packed) {
          const EventIndex last = chosen[k - 1];
          if (is_new_[static_cast<std::size_t>(last)]) return;
          if (live_.event_time(last) == t_b) table.Add(packed);
        });
    internal::EnumerateCore(live_, config_.options, lo, hi, sink);
    AddTable(table, &counts_);
  }

  // Phase 6 — count arriving instances: every instance that includes a new
  // event ends in one (the stream is time-ordered), so instances whose last
  // event is new are exactly the additions; timing bounds how far back
  // their first events can reach.
  if (num_new > 0) {
    obs::PhaseTimer phase_span(metrics.phase6_arrivals,
                               "stream.phase6_arrivals");
    const Timestamp min_new_time = batch[plan.batch_begin].time;
    AddNewInstances(FirstPossibleStart(live_, min_new_time, span));
  }
}

void StreamingMotifCounter::ApplySplice(std::size_t num_evict,
                                        const std::vector<Event>& late,
                                        std::size_t late_begin) {
  obs::PhaseTimer span(StreamMetrics::Get().splice_apply,
                       "stream.splice_apply");
  IngestPlan plan;
  plan.num_evict = num_evict;
  plan.batch_begin = late_begin;
  const std::size_t cut = window_.SpliceCut(plan, late);
  live_.BeginSplice(num_evict, cut);
  window_.Splice(plan, late, &spliced_positions_);
  live_.FinishUpdate();
  id_offset_ += num_evict;
  if (store_active()) {
    // Anchor slots shift in lockstep with the id renumbering (ascending
    // final positions: each insertion already accounts for the previous).
    for (const std::size_t p : spliced_positions_) {
      store_.SpliceSlot(id_offset_ + p);
    }
  }
  InvalidateSnapshot();
}

void StreamingMotifCounter::IngestLate(const std::vector<Event>& late) {
  obs::PhaseTimer late_span(StreamMetrics::Get().late_ingest,
                            "stream.late_ingest");
  const IngestPlan plan = window_.PlanSplice(late);
  stats_.events_dropped += plan.batch_begin;
  const std::size_t num_spliced = late.size() - plan.batch_begin;
  if (num_spliced == 0) return;
  stats_.events_evicted += plan.num_evict;
  stats_.late_events += num_spliced;
  // Spliced events enter the window, so their durations must widen the
  // span bound before any correction range is computed.
  for (std::size_t i = plan.batch_begin; i < late.size(); ++i) {
    max_duration_seen_ = std::max(max_duration_seen_, late[i].duration);
  }

  const std::optional<Timestamp> span = SpanBound();
  const Timestamp min_late_time = late[plan.batch_begin].time;
  const Timestamp max_late_time = late.back().time;

  const auto mark_spliced = [&]() -> EventIndex {
    is_late_.assign(window_.size(), 0);
    EventIndex max_pos = 0;
    for (const std::size_t p : spliced_positions_) {
      is_late_[p] = 1;
      max_pos = std::max(max_pos, static_cast<EventIndex>(p));
    }
    return max_pos;
  };

  if (store_active()) {
    if (track_tails_) {
      // A spliced event lands between resident events in both index and
      // time, so it can violate a consecutive/CDG gap of any entry in the
      // window — no boundary to sweep. Recount (late events are the rare
      // case the lateness horizon already bounds).
      ApplySplice(plan.num_evict, late, plan.batch_begin);
      RecountWindow();
      ++stats_.late_recounts;
      return;
    }
    // Fully incremental: evict, splice (slots realign), absorb the static
    // flips through the store, then add the candidates that contain a
    // spliced event (the only new ones — existing candidates are immune to
    // the splice, their validity being instance-local).
    const std::vector<std::pair<NodeId, NodeId>> flips =
        CollectStaticEdgeFlips(plan.num_evict, late, plan.batch_begin);
    if (plan.num_evict > 0) StoreEvict(plan.num_evict);
    ApplySplice(plan.num_evict, late, plan.batch_begin);
    const EventIndex max_pos = mark_spliced();
    {
      obs::PhaseTimer span(StreamMetrics::Get().store_flips,
                           "stream.store_flips");
      if (store_mode_ == StoreMode::kCountedOnly) {
        // Instances containing a spliced event are the add pass's below.
        if (!StoreProcessFlipsCountedOnly(
                flips, [this](const EventIndex* chosen, int k) {
                  for (int i = 0; i < k; ++i) {
                    if (is_late_[static_cast<std::size_t>(chosen[i])]) {
                      return true;
                    }
                  }
                  return false;
                })) {
          RecountWindow();
          ++stats_.late_recounts;
          return;
        }
      } else {
        StoreProcessFlips(flips);
      }
    }
    StoreAddCandidates(FirstPossibleStart(live_, min_late_time, span),
                       max_pos + 1,
                       [this](const EventIndex* chosen, int k) {
                         for (int i = 0; i < k; ++i) {
                           if (is_late_[static_cast<std::size_t>(chosen[i])]) {
                             return true;
                           }
                         }
                         return false;
                       });
    ++stats_.late_splices;
    return;
  }

  // Without the store, two cases resist cheap localization: a static-edge
  // flip can strike instances far outside any time-bounded root range (the
  // spliced event creates/destroys an edge whose spanning instances live
  // anywhere in the window), and an eviction under a non-local predicate
  // would need the full boundary-tie machinery. Both take the windowed
  // recount; everything else is a bounded subtract/add around the splice.
  std::vector<std::pair<NodeId, NodeId>> flips;
  if (uses_static_inducedness_) {
    flips = CollectStaticEdgeFlips(plan.num_evict, late, plan.batch_begin);
  }
  if (!flips.empty() || (plan.num_evict > 0 && has_nonlocal_)) {
    ApplySplice(plan.num_evict, late, plan.batch_begin);
    RecountWindow();
    ++stats_.late_recounts;
    return;
  }

  const EventIndex n_evict = static_cast<EventIndex>(plan.num_evict);
  // Retract instances anchored at the evicted prefix (reached only with a
  // purely local predicate, so survivors cannot flip).
  if (n_evict > 0) {
    internal::PackedMotifTable retracted;
    internal::PackedTableSink sink{&retracted};
    internal::EnumerateCore(live_, config_.options, 0, n_evict, sink);
    stats_.instances_retracted += retracted.total();
    SubtractTable(retracted, &counts_);
  }

  // Non-local predicates (consecutive, CDG, temporal-window inducedness):
  // a spliced event can only affect instances whose scope reaches its
  // timestamp, i.e. first-event time in [min_late - span, max_late]. The
  // subtract half removes everything in that range at pre-splice validity;
  // the add half below re-adds the range at post-splice validity — the
  // difference is exactly the splice's effect, containment included.
  const bool replace_range = has_nonlocal_;
  if (replace_range) {
    internal::PackedMotifTable removed;
    internal::PackedTableSink sink{&removed};
    internal::EnumerateCore(live_, config_.options,
                            FirstPossibleStart(live_, min_late_time, span),
                            live_.UpperBoundTime(max_late_time), sink);
    SubtractTable(removed, &counts_);
  }

  ApplySplice(plan.num_evict, late, plan.batch_begin);
  const EventIndex max_pos = mark_spliced();

  if (replace_range) {
    internal::PackedMotifTable added;
    internal::PackedTableSink sink{&added};
    internal::EnumerateCore(live_, config_.options,
                            FirstPossibleStart(live_, min_late_time, span),
                            live_.UpperBoundTime(max_late_time), sink);
    AddTable(added, &counts_);
  } else {
    // Purely local predicate: existing instances are untouched, so only
    // instances containing a spliced event are new.
    internal::PackedMotifTable added;
    auto sink = internal::MakeFnSink(
        [&](const EventIndex* chosen, int k, std::uint64_t packed) {
          for (int i = 0; i < k; ++i) {
            if (is_late_[static_cast<std::size_t>(chosen[i])]) {
              added.Add(packed);
              return;
            }
          }
        });
    internal::EnumerateCore(live_, config_.options,
                            FirstPossibleStart(live_, min_late_time, span),
                            max_pos + 1, sink);
    stats_.instances_added += added.total();
    AddTable(added, &counts_);
  }
  ++stats_.late_splices;
}

// --- Memory-budget degradation ladder. ---

void StreamingMotifCounter::EnforceStoreBudget() {
  if (!store_eligible_ || config_.store_budget_bytes == 0) return;
  std::size_t pressure = 0;
  if (config_.budget_pressure_for_test) {
    pressure += config_.budget_pressure_for_test();
  }
  if (const auto injected = fault::Consume("stream.budget_pressure")) {
    if (*injected > 0) pressure += static_cast<std::size_t>(*injected);
  }
  const std::size_t budget = config_.store_budget_bytes;
  const auto footprint = [&] {
    return (store_active() ? store_.ApproxBytes() : 0) + pressure;
  };
  const double per_window_event =
      static_cast<double>(std::max<std::size_t>(window_.size(), 1));

  // Demotions are immediate: a batch must never end over budget. Each
  // demotion first records the observed bytes-per-event of the mode being
  // left, so re-promotion can estimate its cost without re-entering it.
  const auto demote_until_fits = [&] {
    while (store_mode_ != StoreMode::kRecount && footprint() > budget) {
      promote_streak_ = 0;
      if (store_mode_ == StoreMode::kFull) {
        full_bytes_per_event_ =
            static_cast<double>(store_.ApproxBytes()) / per_window_event;
        if (track_tails_) {
          // Order predicates need the uncounted entries for boundary
          // sweeps, so counted-only is not a coherent middle rung here:
          // drop straight to scoped recount.
          store_.Reset(id_offset_);
          store_mode_ = StoreMode::kRecount;
          ++stats_.store_demotions_recount;
        } else {
          store_.PurgeUncounted();
          store_mode_ = StoreMode::kCountedOnly;
          ++stats_.store_demotions_counted;
        }
      } else {  // kCountedOnly
        counted_bytes_per_event_ =
            static_cast<double>(store_.ApproxBytes()) / per_window_event;
        store_.Reset(id_offset_);
        store_mode_ = StoreMode::kRecount;
        ++stats_.store_demotions_recount;
      }
    }
  };
  demote_until_fits();
  if (store_mode_ == StoreMode::kFull) return;

  // Promotion hysteresis: the estimated cost of the next-richer mode must
  // fit under store_promote_fraction of the budget for
  // store_promote_batches consecutive batches.
  if (footprint() > budget) {
    promote_streak_ = 0;
    return;
  }
  const StoreMode target =
      (store_mode_ == StoreMode::kCountedOnly || track_tails_)
          ? StoreMode::kFull
          : StoreMode::kCountedOnly;
  const double per_event = target == StoreMode::kFull
                               ? full_bytes_per_event_
                               : counted_bytes_per_event_;
  const double estimate =
      per_event * per_window_event + static_cast<double>(pressure);
  if (estimate > config_.store_promote_fraction *
                     static_cast<double>(budget)) {
    promote_streak_ = 0;
    return;
  }
  if (++promote_streak_ < config_.store_promote_batches) return;
  promote_streak_ = 0;
  PromoteStore(target);
  if (target == StoreMode::kFull) {
    ++stats_.store_promotions_full;
  } else {
    ++stats_.store_promotions_counted;
  }
  // The per-event estimate can be stale (denser window than when it was
  // recorded); the invariant that a batch never ends over budget wins, so
  // re-check and fall back down if the promotion overshot.
  demote_until_fits();
}

void StreamingMotifCounter::PromoteStore(StoreMode target) {
  store_mode_ = target;
  // Rebuilding the store re-derives the counted set from scratch; the
  // counts were exact before the promotion, so the rebuild must reproduce
  // them bit-for-bit.
  MotifCounts saved = std::move(counts_);
  counts_ = MotifCounts();
  RebuildStore();
  TMOTIF_CHECK_MSG(counts_.SortedByCode() == saved.SortedByCode(),
                   "store promotion derived different counts");
}

// --- Checkpoint capture / restore. ---

StreamCheckpointState StreamingMotifCounter::CaptureCheckpointState() const {
  StreamCheckpointState state;
  state.window_events.assign(window_.events().begin(),
                             window_.events().end());
  state.max_time_seen = window_.max_time_seen();
  state.saw_any_event = window_.saw_any_event();
  state.max_duration_seen = max_duration_seen_;
  state.stats = stats_;
  state.counts = counts_.SortedByCode();
  state.store_mode = store_mode_;
  state.promote_streak = promote_streak_;
  state.full_bytes_per_event = full_bytes_per_event_;
  state.counted_bytes_per_event = counted_bytes_per_event_;
  return state;
}

bool StreamingMotifCounter::RestoreCheckpointState(
    const StreamCheckpointState& state, std::string* error) {
  const auto fail = [&](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (state.store_mode == StoreMode::kCountedOnly && track_tails_) {
    return fail("counted-only store mode is invalid under order predicates");
  }
  window_.Restore(state.window_events, state.max_time_seen,
                  state.saw_any_event);
  live_.Reset();
  id_offset_ = 0;
  max_duration_seen_ = state.max_duration_seen;
  stats_ = state.stats;
  // Exported metrics are deltas against published_stats_; after a restore
  // they must reflect post-restore activity only, not replay history.
  published_stats_ = stats_;
  store_mode_ = store_eligible_ ? state.store_mode : StoreMode::kFull;
  promote_streak_ = state.promote_streak;
  full_bytes_per_event_ = state.full_bytes_per_event;
  counted_bytes_per_event_ = state.counted_bytes_per_event;
  counts_ = MotifCounts();
  for (const auto& [code, n] : state.counts) counts_.Add(code, n);
  store_.Reset(0);
  if (store_active()) {
    // The store is not serialized; regenerate it from the window and
    // cross-check the re-derived counted set against the checkpoint.
    counts_ = MotifCounts();
    RebuildStore();
    if (counts_.SortedByCode() != state.counts) {
      return fail(
          "regenerated instance store disagrees with the checkpointed "
          "counts");
    }
  }
  InvalidateSnapshot();
  return true;
}

}  // namespace tmotif
