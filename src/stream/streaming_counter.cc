#include "stream/streaming_counter.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <unordered_map>

#include "algorithms/parallel.h"
#include "common/check.h"

namespace tmotif {

namespace {

std::uint64_t PairKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

StreamingMotifCounter::StreamingMotifCounter(const StreamConfig& config)
    : config_(config), window_(config.window) {
  TMOTIF_CHECK_MSG(config_.options.max_instances == 0,
                   "max_instances is not supported in streaming counting");
  TMOTIF_CHECK(config_.num_threads >= 1);
  has_nonlocal_ = config_.options.consecutive_events_restriction ||
                  config_.options.cdg_restriction ||
                  config_.options.inducedness != Inducedness::kNone;
  uses_static_inducedness_ =
      config_.options.inducedness == Inducedness::kStatic;
  RebuildGraph();
}

std::vector<std::pair<MotifCode, std::uint64_t>>
StreamingMotifCounter::TopMotifs(std::size_t limit) const {
  auto sorted = counts_.SortedByCount();
  if (limit > 0 && sorted.size() > limit) sorted.resize(limit);
  return sorted;
}

TimespanProfile StreamingMotifCounter::WindowTimespans(
    const MotifCode& code, int num_bins, Timestamp unbounded_hi) const {
  return CollectTimespans(graph_, config_.options, code, num_bins,
                          unbounded_hi);
}

std::optional<Timestamp> StreamingMotifCounter::SpanBound() const {
  std::optional<Timestamp> bound;
  if (options().timing.delta_w.has_value()) bound = *options().timing.delta_w;
  if (options().timing.delta_c.has_value() && options().num_events > 1) {
    Timestamp per_gap = *options().timing.delta_c;
    if (options().duration_aware_gaps) {
      // Gaps are measured from event end times, so each may stretch by the
      // longest duration ever seen (conservative but safe).
      if (per_gap >
          std::numeric_limits<Timestamp>::max() - max_duration_seen_) {
        return bound;
      }
      per_gap += max_duration_seen_;
    }
    const Timestamp gaps = options().num_events - 1;
    if (per_gap > std::numeric_limits<Timestamp>::max() / gaps) return bound;
    const Timestamp loose = per_gap * gaps;
    bound = bound.has_value() ? std::min(*bound, loose) : loose;
  }
  return bound;
}

EventIndex StreamingMotifCounter::FirstPossibleStart(
    const TemporalGraph& graph, Timestamp last_time) const {
  const std::optional<Timestamp> span = SpanBound();
  if (!span.has_value()) return 0;
  return graph.LowerBoundTime(SaturatingSubtract(last_time, *span));
}

bool StreamingMotifCounter::StaticEdgeSetChanges(
    const IngestPlan& plan, const std::vector<Event>& batch) const {
  struct EdgeDelta {
    NodeId src;
    NodeId dst;
    int delta = 0;
  };
  std::unordered_map<std::uint64_t, EdgeDelta> deltas;
  for (std::size_t i = 0; i < plan.num_evict; ++i) {
    const Event& e = window_.event(i);
    auto& d = deltas[PairKey(e.src, e.dst)];
    d.src = e.src;
    d.dst = e.dst;
    --d.delta;
  }
  for (std::size_t i = plan.batch_begin; i < batch.size(); ++i) {
    const Event& e = batch[i];
    auto& d = deltas[PairKey(e.src, e.dst)];
    d.src = e.src;
    d.dst = e.dst;
    ++d.delta;
  }
  for (const auto& [key, d] : deltas) {
    (void)key;
    // edge_events is a plain map lookup, safe for node ids the window has
    // never seen (they simply have no occurrences yet).
    const std::int64_t before =
        static_cast<std::int64_t>(graph_.edge_events(d.src, d.dst).size());
    const std::int64_t after = before + d.delta;
    if ((before > 0) != (after > 0)) return true;
  }
  return false;
}

void StreamingMotifCounter::RebuildGraph() {
  TemporalGraphBuilder builder;
  for (const Event& e : window_.events()) builder.AddEvent(e);
  // The window is canonically sorted, so builder.Build()'s stable sort is
  // the identity and graph indices equal window positions.
  graph_ = builder.Build();
}

void StreamingMotifCounter::ApplyAndRecount(const IngestPlan& plan,
                                            const std::vector<Event>& batch,
                                            bool is_static_fallback) {
  window_.Apply(plan, batch);
  RebuildGraph();
  counts_ = CountMotifsParallel(graph_, config_.options, config_.num_threads);
  ++stats_.full_recounts;
  if (is_static_fallback) ++stats_.static_fallbacks;
}

void StreamingMotifCounter::AddNewInstances(EventIndex begin) {
  const EventIndex end = graph_.num_events();
  if (begin >= end) return;
  const auto add_range = [this](EventIndex lo, EventIndex hi,
                                MotifCounts* into, std::uint64_t* added) {
    EnumerateInstancesInRange(
        graph_, config_.options, lo, hi, [&](const MotifInstance& instance) {
          const EventIndex last =
              instance.event_indices[instance.num_events - 1];
          if (!is_new_[static_cast<std::size_t>(last)]) return;
          into->Add(instance.code);
          ++*added;
        });
  };
  // Sharding by first event keeps shards disjoint exactly as in
  // algorithms/parallel.h; small ranges are not worth the thread spawns.
  if (config_.num_threads <= 1 || end - begin < 64) {
    std::uint64_t added = 0;
    add_range(begin, end, &counts_, &added);
    stats_.instances_added += added;
    return;
  }
  const auto shards = MakeEventShards(begin, end, config_.num_threads);
  std::vector<MotifCounts> partials(shards.size());
  std::vector<std::uint64_t> added(shards.size(), 0);
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    workers.emplace_back([&, s] {
      add_range(shards[s].first, shards[s].second, &partials[s], &added[s]);
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (const auto& [code, count] : partials[s].raw()) {
      counts_.Add(code, count);
    }
    stats_.instances_added += added[s];
  }
}

void StreamingMotifCounter::Ingest(std::vector<Event> batch) {
  std::stable_sort(batch.begin(), batch.end(), EventTimeLess);
  for (const Event& e : batch) {
    TMOTIF_CHECK_MSG(e.src != e.dst,
                     "self-loop events must be filtered before ingestion");
  }
  const IngestPlan plan = window_.PlanIngest(batch);
  const std::size_t old_size = window_.size();
  const std::size_t num_new = batch.size() - plan.batch_begin;
  ++stats_.batches;
  stats_.events_ingested += batch.size();
  stats_.events_dropped += plan.batch_begin;
  stats_.events_evicted += plan.num_evict;
  for (std::size_t i = plan.batch_begin; i < batch.size(); ++i) {
    max_duration_seen_ = std::max(max_duration_seen_, batch[i].duration);
  }

  if (num_new == 0 && plan.num_evict == 0) {
    window_.Apply(plan, batch);  // Still advances the stream clock.
    return;
  }

  // Full window turnover (including startup) recounts from scratch — there
  // is nothing incremental to preserve. Static inducedness additionally
  // recounts whenever the window's static edge set changes: an appearing or
  // disappearing edge can flip instances anywhere in the window, with no
  // locality for a targeted correction (docs/STREAMING.md discusses the
  // trade-off).
  if (plan.num_evict >= old_size) {
    ApplyAndRecount(plan, batch, /*is_static_fallback=*/false);
    return;
  }
  if (uses_static_inducedness_ && StaticEdgeSetChanges(plan, batch)) {
    ApplyAndRecount(plan, batch, /*is_static_fallback=*/true);
    return;
  }

  const TemporalGraph& g0 = graph_;
  const EventIndex n_evict = static_cast<EventIndex>(plan.num_evict);

  // Phase 1 — retract instances anchored at evicted events. The evicted
  // events form a canonical prefix, so an instance loses an event exactly
  // when its first event is evicted.
  if (n_evict > 0) {
    EnumerateInstancesInRange(g0, config_.options, 0, n_evict,
                              [&](const MotifInstance& instance) {
                                counts_.Sub(instance.code);
                                ++stats_.instances_retracted;
                              });
  }

  // Survivors can only flip validity at shared boundary timestamps (or via
  // static-edge flips, already routed to the fallback above): an evicted or
  // arriving event lies inside a surviving instance's scope only when it
  // ties the instance's first or last timestamp. See docs/STREAMING.md for
  // the case analysis.
  const bool evict_tie =
      n_evict > 0 && g0.event(n_evict - 1).time == g0.event(n_evict).time;
  const Timestamp old_surviving_max =
      g0.event(static_cast<EventIndex>(old_size) - 1).time;
  const bool append_tie =
      num_new > 0 && batch[plan.batch_begin].time == old_surviving_max;

  // Phase 2 — evict-side boundary correction: survivors whose first event
  // shares the eviction boundary timestamp are re-evaluated without the
  // evicted tie events.
  TemporalGraph mid;  // Survivor-only graph, built only when needed.
  const TemporalGraph* pre_append = &g0;
  EventIndex pre_append_begin = n_evict;
  if (has_nonlocal_ && evict_tie) {
    const Timestamp t_ev = g0.event(n_evict - 1).time;
    const EventIndex tie_end = g0.UpperBoundTime(t_ev);
    EnumerateInstancesInRange(
        g0, config_.options, n_evict, tie_end,
        [&](const MotifInstance& instance) { counts_.Sub(instance.code); });
    TemporalGraphBuilder builder;
    for (std::size_t i = plan.num_evict; i < old_size; ++i) {
      builder.AddEvent(window_.event(i));
    }
    mid = builder.Build();
    EnumerateInstancesInRange(
        mid, config_.options, 0, tie_end - n_evict,
        [&](const MotifInstance& instance) { counts_.Add(instance.code); });
    pre_append = &mid;
    pre_append_begin = 0;
    ++stats_.tie_corrections;
  }

  // Phase 3 — append-side boundary correction, subtract half: survivors
  // whose last event ties the arriving batch's earliest timestamp are
  // removed at their pre-append validity (re-added at post-append validity
  // in phase 5). Timing bounds the first-event range.
  if (has_nonlocal_ && append_tie) {
    const Timestamp t_b = old_surviving_max;
    const EventIndex lo = std::max(pre_append_begin,
                                   FirstPossibleStart(*pre_append, t_b));
    EnumerateInstancesInRange(
        *pre_append, config_.options, lo, pre_append->num_events(),
        [&](const MotifInstance& instance) {
          const EventIndex last = instance.event_indices[instance.num_events - 1];
          if (pre_append->event(last).time == t_b) counts_.Sub(instance.code);
        });
    ++stats_.tie_corrections;
  }

  // Phase 4 — slide the window and rebuild the graph and arrival flags.
  window_.Apply(plan, batch, &new_positions_);
  RebuildGraph();
  is_new_.assign(static_cast<std::size_t>(graph_.num_events()), 0);
  for (const std::size_t p : new_positions_) is_new_[p] = 1;

  // Phase 5 — append-side boundary correction, add-back half, evaluated on
  // the post-append graph. An instance whose last event is old contains no
  // new event at all (no old event can follow a new one in time), so these
  // are exactly the survivors the subtract half removed.
  if (has_nonlocal_ && append_tie) {
    const Timestamp t_b = old_surviving_max;
    const EventIndex lo = FirstPossibleStart(graph_, t_b);
    const EventIndex hi = graph_.UpperBoundTime(t_b);
    EnumerateInstancesInRange(
        graph_, config_.options, lo, hi, [&](const MotifInstance& instance) {
          const EventIndex last = instance.event_indices[instance.num_events - 1];
          if (is_new_[static_cast<std::size_t>(last)]) return;
          if (graph_.event(last).time == t_b) counts_.Add(instance.code);
        });
  }

  // Phase 6 — count arriving instances: every instance that includes a new
  // event ends in one (the stream is time-ordered), so instances whose last
  // event is new are exactly the additions; timing bounds how far back
  // their first events can reach.
  if (num_new > 0) {
    const Timestamp min_new_time = batch[plan.batch_begin].time;
    AddNewInstances(FirstPossibleStart(graph_, min_new_time));
  }
}

}  // namespace tmotif
