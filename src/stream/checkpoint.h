#ifndef TMOTIF_STREAM_CHECKPOINT_H_
#define TMOTIF_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "stream/streaming_counter.h"

// Durable checkpoint/restore for StreamingMotifCounter.
//
// A checkpoint is a single self-describing binary file:
//
//   "TMCK" | u32 version | u64 payload_size | payload | u32 crc32(payload)
//
// all little-endian. The payload serializes StreamCheckpointState plus a
// fingerprint of the counter configuration (so a checkpoint cannot be
// restored into a counter that counts something else). The live window
// indices and the instance store are NOT serialized — both are regenerated
// from the window events on restore, and the regenerated counted set is
// cross-checked against the checkpointed counts. The full layout is
// documented in docs/RESILIENCE.md.
//
// Writes are atomic: the encoding goes to `path + ".tmp"`, is flushed and
// fsync'd, then renamed over `path`. A crash at any point leaves either the
// previous checkpoint intact or the new one complete — never a torn file
// under the final name. The I/O path carries the fault points
// `checkpoint.short_write`, `checkpoint.crash_before_rename`, and
// `checkpoint.crash_after_rename` (src/common/fault_points.h).

namespace tmotif {

/// Distinct failure classes of checkpoint encode/decode and file I/O, so
/// callers and tests can tell corruption modes apart.
enum class CheckpointStatus {
  kOk = 0,
  /// open/read/write/rename/fsync failed (or a fault point forced it).
  kIoError,
  /// The file ends before the declared structure does (torn write).
  kTruncated,
  /// The leading magic is not "TMCK" — not a checkpoint file.
  kBadMagic,
  /// A version this build does not read (kCheckpointFormatVersion).
  kBadVersion,
  /// The payload CRC32 does not match (bit rot / partial overwrite).
  kBadChecksum,
  /// The payload is structurally invalid despite a matching CRC.
  kMalformed,
  /// The checkpoint was written under an incompatible StreamConfig.
  kConfigMismatch,
};

/// Stable lowercase name of a status ("ok", "io_error", ...).
const char* CheckpointStatusName(CheckpointStatus status);

struct CheckpointResult {
  CheckpointStatus status = CheckpointStatus::kOk;
  /// Human-readable detail for failures (empty on success).
  std::string message;

  bool ok() const { return status == CheckpointStatus::kOk; }
};

/// Current checkpoint format version (bumped on layout changes; decoders
/// reject other versions with kBadVersion).
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// FNV-1a fingerprint of the parts of `config` that define *what* is being
/// counted: enumeration options, window policy, and lateness horizon.
/// Operational knobs (threads, static-flip strategy, memory budget) are
/// deliberately excluded — they may change across a restart without
/// invalidating the state.
std::uint64_t StreamConfigFingerprint(const StreamConfig& config);

/// Serializes the counter's current state (CaptureCheckpointState) to the
/// checkpoint byte format. Call only between batches.
std::string EncodeCheckpoint(const StreamingMotifCounter& counter);

/// Validates `bytes` and restores the state into `counter`, which must be
/// freshly constructed (or otherwise disposable: on failure its state is
/// unspecified and it should be discarded).
CheckpointResult DecodeCheckpoint(const std::string& bytes,
                                  StreamingMotifCounter* counter);

/// Encodes and durably writes a checkpoint to `path` via the atomic
/// write-to-temp / fsync / rename protocol described above.
CheckpointResult WriteCheckpoint(const StreamingMotifCounter& counter,
                                 const std::string& path);

/// Reads `path` and restores it into `counter` (same contract as
/// DecodeCheckpoint).
CheckpointResult RestoreCheckpoint(const std::string& path,
                                   StreamingMotifCounter* counter);

}  // namespace tmotif

#endif  // TMOTIF_STREAM_CHECKPOINT_H_
