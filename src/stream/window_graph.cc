#include "stream/window_graph.h"

#include <algorithm>

#include "common/check.h"

namespace tmotif {

namespace {
const WindowGraph::IdList kEmptyIdList;
}  // namespace

WindowGraph::WindowGraph(const StreamWindow* window) : window_(window) {
  TMOTIF_CHECK(window_ != nullptr);
  Reset();
}

WindowGraph::IndexRange WindowGraph::incident(NodeId node) const {
  const IdList* list = &kEmptyIdList;
  if (node >= 0 && static_cast<std::size_t>(node) < incident_.size()) {
    list = &incident_[static_cast<std::size_t>(node)];
  }
  return IndexRange(IndexIterator(list->begin(), offset_),
                    IndexIterator(list->end(), offset_));
}

bool WindowGraph::HasStaticEdge(NodeId src, NodeId dst) const {
  return edges_.find(NodePairKey(src, dst)) != edges_.end();
}

std::size_t WindowGraph::NumEdgeEvents(NodeId src, NodeId dst) const {
  const auto it = edges_.find(NodePairKey(src, dst));
  return it == edges_.end() ? 0 : it->second.size();
}

bool WindowGraph::HasIncidentInIndexRange(NodeId node, EventIndex lo,
                                          EventIndex hi) const {
  if (hi <= lo) return false;
  const IndexRange range = incident(node);
  const auto first = std::upper_bound(range.begin(), range.end(), lo);
  return first != range.end() && *first < hi;
}

int WindowGraph::CountEdgeEventsInTimeRange(NodeId src, NodeId dst,
                                            Timestamp t_lo,
                                            Timestamp t_hi) const {
  if (t_hi < t_lo) return 0;
  const auto it = edges_.find(NodePairKey(src, dst));
  if (it == edges_.end()) return 0;
  const IdList& list = it->second;
  const auto time_of = [this](std::uint64_t id) {
    return event_time(static_cast<EventIndex>(id - offset_));
  };
  const auto first = std::lower_bound(
      list.begin(), list.end(), t_lo,
      [&](std::uint64_t id, Timestamp t) { return time_of(id) < t; });
  const auto last = std::upper_bound(
      list.begin(), list.end(), t_hi,
      [&](Timestamp t, std::uint64_t id) { return t < time_of(id); });
  return static_cast<int>(last - first);
}

EventIndex WindowGraph::LowerBoundTime(Timestamp t) const {
  const std::deque<Event>& events = window_->events();
  const auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const Event& e, Timestamp value) { return e.time < value; });
  return static_cast<EventIndex>(it - events.begin());
}

EventIndex WindowGraph::UpperBoundTime(Timestamp t) const {
  const std::deque<Event>& events = window_->events();
  const auto it = std::upper_bound(
      events.begin(), events.end(), t,
      [](Timestamp value, const Event& e) { return value < e.time; });
  return static_cast<EventIndex>(it - events.begin());
}

void WindowGraph::Reset() {
  offset_ = 0;
  edges_.clear();
  for (IdList& list : incident_) list.clear();
  pending_ = false;
  const std::size_t size = window_->size();
  for (std::size_t p = 0; p < size; ++p) {
    AppendEntry(window_->event(p), static_cast<std::uint64_t>(p));
  }
}

void WindowGraph::PopFrontEntry(IdList* list, std::uint64_t id) {
  TMOTIF_CHECK(!list->empty() && list->front() == id);
  list->pop_front();
}

void WindowGraph::PopBackEntry(IdList* list, std::uint64_t id) {
  TMOTIF_CHECK(!list->empty() && list->back() == id);
  list->pop_back();
}

void WindowGraph::PopEdgeFront(NodeId src, NodeId dst, std::uint64_t id) {
  const auto it = edges_.find(NodePairKey(src, dst));
  TMOTIF_CHECK(it != edges_.end());
  PopFrontEntry(&it->second, id);
  if (it->second.empty()) edges_.erase(it);
}

void WindowGraph::PopEdgeBack(NodeId src, NodeId dst, std::uint64_t id) {
  const auto it = edges_.find(NodePairKey(src, dst));
  TMOTIF_CHECK(it != edges_.end());
  PopBackEntry(&it->second, id);
  if (it->second.empty()) edges_.erase(it);
}

void WindowGraph::AppendEntry(const Event& e, std::uint64_t id) {
  const std::size_t needed =
      static_cast<std::size_t>(std::max(e.src, e.dst)) + 1;
  if (incident_.size() < needed) incident_.resize(needed);
  incident_[static_cast<std::size_t>(e.src)].push_back(id);
  incident_[static_cast<std::size_t>(e.dst)].push_back(id);
  edges_[NodePairKey(e.src, e.dst)].push_back(id);
}

void WindowGraph::BeginUpdate(const IngestPlan& plan,
                              const std::vector<Event>& batch) {
  TMOTIF_CHECK(!pending_);
  const std::size_t old_size = window_->size();
  TMOTIF_CHECK(plan.num_evict <= old_size);

  // Evict the canonical prefix: every evicted id fronts each list it
  // appears in (ids ascend within every list).
  for (std::size_t p = 0; p < plan.num_evict; ++p) {
    const Event& e = window_->event(p);
    const std::uint64_t id = offset_ + p;
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.src)], id);
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
    PopEdgeFront(e.src, e.dst, id);
  }

  // Pop the trailing tie group the merge may interleave with (every event
  // not strictly before the first entering batch event). Walking backwards
  // keeps each popped id at the back of its lists.
  std::size_t keep_end = old_size;
  if (plan.batch_begin < batch.size()) {
    const Event& first_new = batch[plan.batch_begin];
    while (keep_end > plan.num_evict &&
           !EventTimeLess(window_->event(keep_end - 1), first_new)) {
      const Event& e = window_->event(keep_end - 1);
      const std::uint64_t id = offset_ + (keep_end - 1);
      PopBackEntry(&incident_[static_cast<std::size_t>(e.src)], id);
      PopBackEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
      PopEdgeBack(e.src, e.dst, id);
      --keep_end;
    }
  }

  offset_ += plan.num_evict;
  append_from_ = keep_end - plan.num_evict;
  pending_ = true;
}

void WindowGraph::FinishUpdate() {
  TMOTIF_CHECK(pending_);
  const std::size_t size = window_->size();
  for (std::size_t p = append_from_; p < size; ++p) {
    AppendEntry(window_->event(p), offset_ + p);
  }
  pending_ = false;
}

}  // namespace tmotif
