#include "stream/window_graph.h"

#include <algorithm>

#include "common/check.h"

namespace tmotif {

namespace {
const WindowGraph::IdList kEmptyIdList;
}  // namespace

WindowGraph::WindowGraph(const StreamWindow* window) : window_(window) {
  TMOTIF_CHECK(window_ != nullptr);
  Reset();
}

WindowGraph::IndexRange WindowGraph::incident(NodeId node) const {
  const IdList* list = &kEmptyIdList;
  if (node >= 0 && static_cast<std::size_t>(node) < incident_.size()) {
    list = &incident_[static_cast<std::size_t>(node)];
  }
  return IndexRange(IndexIterator(list->begin(), offset_, window_),
                    IndexIterator(list->end(), offset_, window_));
}

WindowGraph::EdgeHandle WindowGraph::FindEdge(NodeId src, NodeId dst) const {
  if (src < 0 || static_cast<std::size_t>(src) >= adjacency_.size()) {
    return kNoEdgeHandle;
  }
  for (const EdgeCell& cell : adjacency_[static_cast<std::size_t>(src)]) {
    if (cell.dst == dst) return &cell;
  }
  return kNoEdgeHandle;
}

std::size_t WindowGraph::EdgeLowerRank(EdgeHandle edge, Timestamp t) const {
  return static_cast<std::size_t>(
      std::lower_bound(edge->times.begin(), edge->times.end(), t) -
      edge->times.begin());
}

std::size_t WindowGraph::EdgeUpperRank(EdgeHandle edge, Timestamp t) const {
  return static_cast<std::size_t>(
      std::upper_bound(edge->times.begin(), edge->times.end(), t) -
      edge->times.begin());
}

int WindowGraph::CountEdgeEventsInTimeRange(EdgeHandle edge, Timestamp t_lo,
                                            Timestamp t_hi) const {
  if (t_hi < t_lo) return 0;
  return static_cast<int>(EdgeUpperRank(edge, t_hi) -
                          EdgeLowerRank(edge, t_lo));
}

bool WindowGraph::HasAdjacentEdgeEventInRange(EventIndex c, Timestamp t_lo,
                                              Timestamp t_hi) const {
  const EdgeHandle edge = FindEdge(event_src(c), event_dst(c));
  TMOTIF_CHECK(edge != kNoEdgeHandle);  // c itself lies on the edge.
  const std::uint64_t id = offset_ + static_cast<std::uint64_t>(c);
  const auto it = std::lower_bound(edge->ids.begin(), edge->ids.end(), id);
  const std::size_t rank =
      static_cast<std::size_t>(it - edge->ids.begin());
  return (rank > 0 && edge->times[rank - 1] >= t_lo) ||
         (rank + 1 < edge->ids.size() && edge->times[rank + 1] <= t_hi);
}

std::size_t WindowGraph::NumEdgeEvents(NodeId src, NodeId dst) const {
  const EdgeHandle edge = FindEdge(src, dst);
  return edge == kNoEdgeHandle ? 0 : edge->ids.size();
}

bool WindowGraph::HasIncidentInIndexRange(NodeId node, EventIndex lo,
                                          EventIndex hi) const {
  if (hi <= lo) return false;
  const IndexRange range = incident(node);
  const auto first = std::upper_bound(range.begin(), range.end(), lo);
  return first != range.end() && *first < hi;
}

int WindowGraph::CountEdgeEventsInTimeRange(NodeId src, NodeId dst,
                                            Timestamp t_lo,
                                            Timestamp t_hi) const {
  const EdgeHandle edge = FindEdge(src, dst);
  if (edge == kNoEdgeHandle) return 0;
  return CountEdgeEventsInTimeRange(edge, t_lo, t_hi);
}

int WindowGraph::CountEdgeEventsInIndexRange(NodeId src, NodeId dst,
                                             EventIndex lo,
                                             EventIndex hi) const {
  if (hi <= lo) return 0;
  const EdgeHandle edge = FindEdge(src, dst);
  if (edge == kNoEdgeHandle) return 0;
  // Ids are monotone and position = id - offset, so position bounds map to
  // id bounds directly (negative bounds clamp to the list front: every
  // position is >= 0).
  const IdList& ids = edge->ids;
  const auto first =
      lo < 0 ? ids.begin()
             : std::upper_bound(ids.begin(), ids.end(),
                                offset_ + static_cast<std::uint64_t>(lo));
  const auto last =
      hi < 0 ? ids.begin()
             : std::lower_bound(ids.begin(), ids.end(),
                                offset_ + static_cast<std::uint64_t>(hi));
  return static_cast<int>(last - first);
}

EventIndex WindowGraph::LowerBoundTime(Timestamp t) const {
  const std::deque<Event>& events = window_->events();
  const auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const Event& e, Timestamp value) { return e.time < value; });
  return static_cast<EventIndex>(it - events.begin());
}

EventIndex WindowGraph::UpperBoundTime(Timestamp t) const {
  const std::deque<Event>& events = window_->events();
  const auto it = std::upper_bound(
      events.begin(), events.end(), t,
      [](Timestamp value, const Event& e) { return value < e.time; });
  return static_cast<EventIndex>(it - events.begin());
}

void WindowGraph::Reset() {
  offset_ = 0;
  for (std::vector<EdgeCell>& cells : adjacency_) cells.clear();
  for (IdList& list : incident_) list.clear();
  pending_ = false;
  const std::size_t size = window_->size();
  for (std::size_t p = 0; p < size; ++p) {
    AppendEntry(window_->event(p), static_cast<std::uint64_t>(p));
  }
}

void WindowGraph::PopFrontEntry(IdList* list, std::uint64_t id) {
  TMOTIF_CHECK(!list->empty() && list->front() == id);
  list->pop_front();
}

void WindowGraph::PopBackEntry(IdList* list, std::uint64_t id) {
  TMOTIF_CHECK(!list->empty() && list->back() == id);
  list->pop_back();
}

WindowGraph::EdgeCell* WindowGraph::MutableEdge(NodeId src, NodeId dst) {
  TMOTIF_CHECK(src >= 0 && static_cast<std::size_t>(src) < adjacency_.size());
  for (EdgeCell& cell : adjacency_[static_cast<std::size_t>(src)]) {
    if (cell.dst == dst) return &cell;
  }
  return nullptr;
}

void WindowGraph::EraseEdgeIfEmpty(NodeId src, EdgeCell* cell) {
  if (!cell->ids.empty()) return;
  std::vector<EdgeCell>& cells = adjacency_[static_cast<std::size_t>(src)];
  // Order within a source is arbitrary: swap-remove (guarding against the
  // self-move when the drained cell already sits at the back).
  if (cell != &cells.back()) *cell = std::move(cells.back());
  cells.pop_back();
}

void WindowGraph::PopEdgeFront(NodeId src, NodeId dst, std::uint64_t id) {
  EdgeCell* cell = MutableEdge(src, dst);
  TMOTIF_CHECK(cell != nullptr);
  PopFrontEntry(&cell->ids, id);
  cell->times.pop_front();
  EraseEdgeIfEmpty(src, cell);
}

void WindowGraph::PopEdgeBack(NodeId src, NodeId dst, std::uint64_t id) {
  EdgeCell* cell = MutableEdge(src, dst);
  TMOTIF_CHECK(cell != nullptr);
  PopBackEntry(&cell->ids, id);
  cell->times.pop_back();
  EraseEdgeIfEmpty(src, cell);
}

void WindowGraph::AppendEntry(const Event& e, std::uint64_t id) {
  const std::size_t needed =
      static_cast<std::size_t>(std::max(e.src, e.dst)) + 1;
  if (incident_.size() < needed) incident_.resize(needed);
  if (adjacency_.size() < needed) adjacency_.resize(needed);
  incident_[static_cast<std::size_t>(e.src)].push_back(id);
  incident_[static_cast<std::size_t>(e.dst)].push_back(id);
  EdgeCell* cell = MutableEdge(e.src, e.dst);
  if (cell == nullptr) {
    adjacency_[static_cast<std::size_t>(e.src)].emplace_back();
    cell = &adjacency_[static_cast<std::size_t>(e.src)].back();
    cell->dst = e.dst;
  }
  cell->ids.push_back(id);
  cell->times.push_back(e.time);
}

void WindowGraph::BeginUpdate(const IngestPlan& plan,
                              const std::vector<Event>& batch) {
  TMOTIF_CHECK(!pending_);
  const std::size_t old_size = window_->size();
  TMOTIF_CHECK(plan.num_evict <= old_size);

  // Evict the canonical prefix: every evicted id fronts each list it
  // appears in (ids ascend within every list).
  for (std::size_t p = 0; p < plan.num_evict; ++p) {
    const Event& e = window_->event(p);
    const std::uint64_t id = offset_ + p;
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.src)], id);
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
    PopEdgeFront(e.src, e.dst, id);
  }

  // Pop the trailing tie group the merge may interleave with (every event
  // not strictly before the first entering batch event). Walking backwards
  // keeps each popped id at the back of its lists.
  std::size_t keep_end = old_size;
  if (plan.batch_begin < batch.size()) {
    const Event& first_new = batch[plan.batch_begin];
    while (keep_end > plan.num_evict &&
           !EventTimeLess(window_->event(keep_end - 1), first_new)) {
      const Event& e = window_->event(keep_end - 1);
      const std::uint64_t id = offset_ + (keep_end - 1);
      PopBackEntry(&incident_[static_cast<std::size_t>(e.src)], id);
      PopBackEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
      PopEdgeBack(e.src, e.dst, id);
      --keep_end;
    }
  }

  offset_ += plan.num_evict;
  append_from_ = keep_end - plan.num_evict;
  pending_ = true;
}

void WindowGraph::BeginSplice(std::size_t num_evict, std::size_t cut) {
  TMOTIF_CHECK(!pending_);
  const std::size_t old_size = window_->size();
  TMOTIF_CHECK(num_evict <= cut && cut <= old_size);

  for (std::size_t p = 0; p < num_evict; ++p) {
    const Event& e = window_->event(p);
    const std::uint64_t id = offset_ + p;
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.src)], id);
    PopFrontEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
    PopEdgeFront(e.src, e.dst, id);
  }

  // Walking backwards keeps each popped id at the back of its lists.
  for (std::size_t p = old_size; p > cut; --p) {
    const Event& e = window_->event(p - 1);
    const std::uint64_t id = offset_ + (p - 1);
    PopBackEntry(&incident_[static_cast<std::size_t>(e.src)], id);
    PopBackEntry(&incident_[static_cast<std::size_t>(e.dst)], id);
    PopEdgeBack(e.src, e.dst, id);
  }

  offset_ += num_evict;
  append_from_ = cut - num_evict;
  pending_ = true;
}

void WindowGraph::FinishUpdate() {
  TMOTIF_CHECK(pending_);
  const std::size_t size = window_->size();
  for (std::size_t p = append_from_; p < size; ++p) {
    AppendEntry(window_->event(p), offset_ + p);
  }
  pending_ = false;
}

}  // namespace tmotif
