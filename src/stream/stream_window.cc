#include "stream/stream_window.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace tmotif {

Timestamp SaturatingSubtract(Timestamp a, Timestamp b) {
  const Timestamp lowest = std::numeric_limits<Timestamp>::min();
  return a >= lowest + b ? a - b : lowest;
}

WindowPolicy WindowPolicy::CountBased(std::int64_t max_events) {
  TMOTIF_CHECK_MSG(max_events >= 1, "count-based window needs capacity >= 1");
  WindowPolicy policy;
  policy.kind = WindowPolicyKind::kCountBased;
  policy.max_events = max_events;
  return policy;
}

WindowPolicy WindowPolicy::TimeBased(Timestamp horizon) {
  TMOTIF_CHECK_MSG(horizon >= 1, "time-based window needs horizon >= 1s");
  WindowPolicy policy;
  policy.kind = WindowPolicyKind::kTimeBased;
  policy.horizon = horizon;
  return policy;
}

std::string WindowPolicy::ToString() const {
  if (kind == WindowPolicyKind::kCountBased) {
    return "last " + std::to_string(max_events) + " events";
  }
  return "last " + std::to_string(horizon) + "s";
}

StreamWindow::StreamWindow(const WindowPolicy& policy) : policy_(policy) {
  if (policy_.kind == WindowPolicyKind::kCountBased) {
    TMOTIF_CHECK(policy_.max_events >= 1);
  } else {
    TMOTIF_CHECK(policy_.horizon >= 1);
  }
}

IngestPlan StreamWindow::PlanIngest(const std::vector<Event>& batch) const {
  IngestPlan plan;
  if (batch.empty()) return plan;
  TMOTIF_CHECK_MSG(!saw_any_event_ || batch.front().time >= max_time_seen_,
                   "streaming ingest requires time-ordered batches");

  if (policy_.kind == WindowPolicyKind::kCountBased) {
    const std::size_t cap = static_cast<std::size_t>(policy_.max_events);
    const std::size_t total = events_.size() + batch.size();
    if (total <= cap) return plan;
    // The window must end as the last `cap` events of the *merged*
    // canonical sequence. Both sides are sorted, so the overflow is a
    // prefix of each: walk the merge (ties prefer the window side, exactly
    // as Apply merges) and split the first `total - cap` steps.
    std::size_t overflow = total - cap;
    while (overflow > 0) {
      if (plan.num_evict < events_.size() &&
          (plan.batch_begin >= batch.size() ||
           !EventTimeLess(batch[plan.batch_begin], events_[plan.num_evict]))) {
        ++plan.num_evict;
      } else {
        ++plan.batch_begin;
      }
      --overflow;
    }
    return plan;
  }

  // Before any event, the stream clock is the batch itself (timestamps may
  // be negative; a zero-initialized clock must not win the max).
  const Timestamp t_latest = saw_any_event_
                                 ? std::max(max_time_seen_, batch.back().time)
                                 : batch.back().time;
  const Timestamp threshold =
      SaturatingSubtract(t_latest, policy_.horizon);
  // Keep events with time > threshold; both the window and the batch are
  // sorted by time, so the cut points are binary searches.
  plan.num_evict = static_cast<std::size_t>(
      std::upper_bound(events_.begin(), events_.end(), threshold,
                       [](Timestamp t, const Event& e) { return t < e.time; }) -
      events_.begin());
  plan.batch_begin = static_cast<std::size_t>(
      std::upper_bound(batch.begin(), batch.end(), threshold,
                       [](Timestamp t, const Event& e) { return t < e.time; }) -
      batch.begin());
  return plan;
}

IngestPlan StreamWindow::PlanSplice(const std::vector<Event>& late) const {
  IngestPlan plan;
  if (late.empty()) return plan;
  TMOTIF_CHECK_MSG(saw_any_event_ && late.back().time < max_time_seen_,
                   "PlanSplice requires genuinely late events");

  if (policy_.kind == WindowPolicyKind::kCountBased) {
    const std::size_t cap = static_cast<std::size_t>(policy_.max_events);
    const std::size_t total = events_.size() + late.size();
    if (total <= cap) return plan;
    // Same merged-prefix walk as PlanIngest: the post-splice window must be
    // the last `cap` events of the merged canonical sequence. Ties prefer
    // the window side (residents are older arrivals).
    std::size_t overflow = total - cap;
    while (overflow > 0) {
      if (plan.num_evict < events_.size() &&
          (plan.batch_begin >= late.size() ||
           !EventTimeLess(late[plan.batch_begin], events_[plan.num_evict]))) {
        ++plan.num_evict;
      } else {
        ++plan.batch_begin;
      }
      --overflow;
    }
    return plan;
  }

  // Time-based: the clock does not move, so residents are already inside
  // the horizon (num_evict = 0); late events at or below the threshold
  // would be evicted instantly and are dropped instead.
  const Timestamp threshold =
      SaturatingSubtract(max_time_seen_, policy_.horizon);
  plan.batch_begin = static_cast<std::size_t>(
      std::upper_bound(late.begin(), late.end(), threshold,
                       [](Timestamp t, const Event& e) { return t < e.time; }) -
      late.begin());
  return plan;
}

std::size_t StreamWindow::SpliceCut(const IngestPlan& plan,
                                    const std::vector<Event>& late) const {
  if (plan.batch_begin >= late.size()) return events_.size();
  // The first surviving late event inserts after every resident that
  // canonically precedes-or-equals it (late arrivals are younger, so they
  // sort after residents with identical keys).
  const Event& first = late[plan.batch_begin];
  const auto it = std::upper_bound(
      events_.begin(), events_.end(), first,
      [](const Event& a, const Event& b) { return EventTimeLess(a, b); });
  return static_cast<std::size_t>(it - events_.begin());
}

void StreamWindow::Splice(const IngestPlan& plan,
                          const std::vector<Event>& late,
                          std::vector<std::size_t>* positions,
                          std::size_t* first_changed) {
  TMOTIF_CHECK(plan.num_evict <= events_.size());
  TMOTIF_CHECK(plan.batch_begin <= late.size());
  if (positions != nullptr) positions->clear();
  const std::size_t cut = SpliceCut(plan, late);
  TMOTIF_CHECK(cut >= plan.num_evict);  // The plan dropped earlier events.
  if (first_changed != nullptr) *first_changed = cut;
  events_.erase(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(plan.num_evict));
  if (plan.batch_begin >= late.size()) return;

  // Pull off the tail past the cut, merge it with the late events, and push
  // the merged run back — the same bounded-tail scheme as Apply, with the
  // cut at the first insertion point instead of the trailing tie group.
  std::vector<Event> tail;
  while (events_.size() > cut - plan.num_evict) {
    tail.push_back(events_.back());
    events_.pop_back();
  }
  std::reverse(tail.begin(), tail.end());
  std::size_t position = events_.size();
  std::size_t old_it = 0;
  std::size_t new_it = plan.batch_begin;
  while (old_it < tail.size() || new_it < late.size()) {
    // Ties prefer the resident side (older arrivals first).
    if (old_it < tail.size() &&
        (new_it >= late.size() ||
         !EventTimeLess(late[new_it], tail[old_it]))) {
      events_.push_back(tail[old_it++]);
    } else {
      if (positions != nullptr) positions->push_back(position);
      events_.push_back(late[new_it++]);
    }
    ++position;
  }
}

void StreamWindow::Apply(const IngestPlan& plan,
                         const std::vector<Event>& batch,
                         std::vector<std::size_t>* new_positions) {
  TMOTIF_CHECK(plan.num_evict <= events_.size());
  TMOTIF_CHECK(plan.batch_begin <= batch.size());
  if (new_positions != nullptr) new_positions->clear();
  events_.erase(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(plan.num_evict));
  if (!batch.empty()) {
    max_time_seen_ = saw_any_event_
                         ? std::max(max_time_seen_, batch.back().time)
                         : batch.back().time;
    saw_any_event_ = true;
  }
  if (plan.batch_begin >= batch.size()) return;

  // New events sort after every strictly-older event, so only the trailing
  // tie group of the window can interleave with the batch. Pull it off,
  // merge (ties prefer the window side = older arrivals, matching a stable
  // sort of the whole history), and push the merged tail back.
  const Event& first_new = batch[plan.batch_begin];
  std::vector<Event> tail;
  while (!events_.empty() && !EventTimeLess(events_.back(), first_new)) {
    tail.push_back(events_.back());
    events_.pop_back();
  }
  std::reverse(tail.begin(), tail.end());
  std::size_t position = events_.size();
  std::size_t old_it = 0;
  std::size_t new_it = plan.batch_begin;
  while (old_it < tail.size() || new_it < batch.size()) {
    // Ties prefer the window side (older arrivals first).
    if (old_it < tail.size() &&
        (new_it >= batch.size() || !EventTimeLess(batch[new_it], tail[old_it]))) {
      events_.push_back(tail[old_it++]);
    } else {
      if (new_positions != nullptr) new_positions->push_back(position);
      events_.push_back(batch[new_it++]);
    }
    ++position;
  }
}

void StreamWindow::Clear() { events_.clear(); }

void StreamWindow::Restore(const std::vector<Event>& events,
                           Timestamp max_time_seen, bool saw_any_event) {
  events_.assign(events.begin(), events.end());
  max_time_seen_ = max_time_seen;
  saw_any_event_ = saw_any_event;
}

}  // namespace tmotif
