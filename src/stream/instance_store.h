#ifndef TMOTIF_STREAM_INSTANCE_STORE_H_
#define TMOTIF_STREAM_INSTANCE_STORE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "core/enumerate_core.h"
#include "graph/event.h"

namespace tmotif {

/// Node-pair-indexed live-instance store: the data structure that makes
/// static-induced streaming fully incremental (docs/STREAMING.md).
///
/// Under `Inducedness::kStatic` an instance's validity factors into
/// independent parts:
///   * a *candidate* predicate (connectivity, node cap, timing) that reads
///     only the instance's own events,
///   * the static coverage check: `distinct event digit pairs ==
///     number of directed static edges among the instance's nodes`, and
///   * optionally an order predicate (consecutive-events / CDG) over the
///     candidate's gaps.
/// The store keeps every candidate instance of the current window together
/// with its distinct-pair count, a `covered` flag caching the coverage
/// check and an `order_valid` flag caching the order predicate; `counted`
/// is their conjunction. Candidates enter only when a batch delivers their
/// last event and leave only when the window evicts their first event (both
/// already enumerated by the streaming delta path). Coverage can only
/// change for instances whose node set contains BOTH endpoints of a static
/// edge that appeared or disappeared — bucketing entries by every unordered
/// node pair of their scope turns a static-edge flip into a bucket scan:
/// retire or admit exactly the affected instances, O(affected), no recount.
/// Order validity can only change at the window boundaries (see
/// stream/streaming_counter.cc), which the anchor and tail indexes below
/// localize the same way.
///
/// Identity scheme: entries are anchored by their first event's monotone id
/// (the stream/window_graph.h `id = offset + position` numbering) via a
/// deque of per-id slots; when tail tracking is on (order predicates), a
/// second deque anchors entries by their last event's id. Eviction pops
/// slots from the front; a late-event splice (stream/streaming_counter.h)
/// inserts an empty slot, which shifts every later slot exactly in lockstep
/// with the id renumbering of the spliced window. Entries additionally
/// record their events' ids so order predicates can be re-evaluated in
/// place; only a tail-tied entry's last id can ever shift (the caller
/// re-syncs it from the tail slot during the boundary sweep).
///
/// Bucket slots referencing evicted entries are dropped lazily when their
/// bucket is next scanned; a global rebuild runs when the dead-slot debt
/// exceeds the live population, so memory stays O(live candidates). Tail
/// slots clean up the same way (lazily on sweep, wholesale on eviction).
class LiveInstanceStore {
 public:
  struct Entry {
    /// Digit -> node id of the candidate (first `num_nodes` are valid).
    std::array<NodeId, internal::kMaxCoreNodes> nodes;
    /// Monotone ids of the candidate's events (first `num_events` valid).
    std::array<std::uint64_t, internal::kMaxCoreEvents> event_ids;
    /// Packed motif code (core/enumerate_core.h) — the counts-table key.
    std::uint64_t packed = 0;
    /// Tag distinguishing reuses of this pool index (bucket staleness).
    std::uint32_t generation = 0;
    /// Last flip pass that re-evaluated this entry (multi-flip dedupe).
    std::uint64_t visit_stamp = 0;
    std::int8_t num_nodes = 0;
    std::int8_t num_events = 0;
    /// Distinct event digit pairs of `packed`.
    std::int8_t distinct_pairs = 0;
    /// Cached static coverage verdict.
    bool covered = false;
    /// Cached order-predicate verdict (true when no order predicate).
    bool order_valid = false;
    /// covered && order_valid: the instance currently contributes.
    bool counted = false;
    bool alive = false;
  };

  LiveInstanceStore() = default;

  /// Enables the last-event (tail) index. Must be set before the first
  /// Insert after a Reset; the flag itself survives Reset.
  void SetTrackTails(bool track) { track_tails_ = track; }

  /// Dead-bucket-slot debt tolerated beyond the live population before a
  /// global bucket rebuild runs (default 64). The knob survives Reset;
  /// tests lower it to force compaction deterministically
  /// (StreamConfig::store_compaction_slack).
  void SetCompactionSlack(std::size_t slack) { compaction_slack_ = slack; }
  /// Global bucket rebuilds performed so far (stream.store_compactions).
  std::uint64_t compactions() const { return compactions_; }

  /// Drops everything and restarts the anchor id space at `first_id_base`
  /// (the full-recount path re-populates via Insert).
  void Reset(std::uint64_t first_id_base);

  /// Registers a candidate whose events carry the `num_events` monotone ids
  /// in `event_ids` (ascending; event_ids[0] >= the current base anchors
  /// it). `nodes` must hold `num_nodes` digit-ordered node ids.
  Entry& Insert(const std::uint64_t* event_ids, int num_events,
                std::uint64_t packed, const NodeId* nodes, int num_nodes,
                int distinct_pairs, bool covered, bool order_valid);

  /// Removes every entry anchored at the `num_evicted` oldest ids and
  /// advances the base, invoking `fn(const Entry&)` before each removal
  /// (the eviction mirror of the window's canonical-prefix eviction).
  template <typename Fn>
  void EvictFront(std::size_t num_evicted, Fn fn) {
    for (std::size_t i = 0; i < num_evicted && !slots_.empty(); ++i) {
      for (const std::uint64_t tagged : slots_.front()) {
        Entry& entry = pool_[SlotIndex(tagged)];
        TMOTIF_CHECK(entry.alive && entry.generation == SlotTag(tagged));
        fn(const_cast<const Entry&>(entry));
        Free(&entry, SlotIndex(tagged));
      }
      slots_.pop_front();
    }
    // A tail slot below the new base can only reference an entry whose
    // first event (<= its last) was just evicted above; any refs it holds
    // are dead. Refs to evicted entries in *later* tail slots go stale and
    // are skipped lazily by ForEachTailAnchored.
    for (std::size_t i = 0; i < num_evicted && !tail_slots_.empty(); ++i) {
      tail_slots_.pop_front();
    }
    base_ += num_evicted;
    CompactIfNeeded();
  }

  /// Opens an empty anchor slot at `first_id`: the event spliced in at that
  /// id shifts every later event's id by one, and inserting the slot shifts
  /// the anchored entries identically. A splice past the last populated
  /// slot needs no realignment.
  void SpliceSlot(std::uint64_t first_id);

  /// Invokes `fn(Entry&)` for every live entry whose node set contains both
  /// `u` and `v` — the exact set a static-edge flip of (u, v) (in either
  /// direction) can retire or admit. Stale bucket slots encountered on the
  /// way are removed.
  template <typename Fn>
  void ForEachTouching(NodeId u, NodeId v, Fn fn) {
    const auto it = buckets_.find(UnorderedPairKey(u, v));
    if (it == buckets_.end()) return;
    std::vector<std::uint64_t>& bucket = it->second;
    for (std::size_t i = 0; i < bucket.size();) {
      Entry& entry = pool_[SlotIndex(bucket[i])];
      if (!entry.alive || entry.generation != SlotTag(bucket[i])) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        TMOTIF_CHECK(dead_bucket_slots_ > 0);
        --dead_bucket_slots_;
        continue;
      }
      fn(entry);
      ++i;
    }
    if (bucket.empty()) buckets_.erase(it);
  }

  /// Removes every live entry whose node set contains both `u` and `v`,
  /// invoking `fn(const Entry&)` just before each removal. Unlike
  /// ForEachTouching this is *physical* removal — anchor reference, bucket
  /// reference and pool slot are all released — so scanning another flipped
  /// pair's bucket afterwards can never surface the entry again. The
  /// counted-only degraded mode (docs/RESILIENCE.md) relies on this to
  /// extract-and-rederive flip-spanning instances without identity checks.
  /// Stale references to *other* entries are dropped on the way; tail
  /// references (if any) go stale and are skipped lazily as usual.
  template <typename Fn>
  void ExtractTouching(NodeId u, NodeId v, Fn fn) {
    const auto it = buckets_.find(UnorderedPairKey(u, v));
    if (it == buckets_.end()) return;
    std::vector<std::uint64_t>& bucket = it->second;
    for (std::size_t i = 0; i < bucket.size();) {
      const std::uint64_t tagged = bucket[i];
      Entry& entry = pool_[SlotIndex(tagged)];
      if (entry.alive && entry.generation == SlotTag(tagged)) {
        fn(const_cast<const Entry&>(entry));
        EraseAnchorRef(entry, tagged);
        Free(&entry, SlotIndex(tagged));
        // Free() just booked this very reference as debt; settle it by
        // removing the slot eagerly (its other buckets stay lazy).
      }
      bucket[i] = bucket.back();
      bucket.pop_back();
      TMOTIF_CHECK(dead_bucket_slots_ > 0);
      --dead_bucket_slots_;
    }
    if (bucket.empty()) buckets_.erase(it);
  }

  /// Removes every entry that is not currently counted and rebuilds the
  /// pool around the survivors. A plain Free would keep the purged entries'
  /// pool slots allocated, so it would not shed the logical footprint that
  /// drives ApproxBytes — and shedding bytes is the point: this is the
  /// demotion step into the counted-only degraded mode. Returns the number
  /// of entries removed.
  std::size_t PurgeUncounted();

  /// Invokes `fn(Entry&)` for every live entry whose first event's id lies
  /// in [id_begin, id_end). Anchor slots are authoritative (entries only
  /// die by front eviction), so no staleness handling is needed.
  template <typename Fn>
  void ForEachAnchoredInRange(std::uint64_t id_begin, std::uint64_t id_end,
                              Fn fn) {
    for (std::uint64_t id = std::max(id_begin, base_); id < id_end; ++id) {
      const std::size_t slot = static_cast<std::size_t>(id - base_);
      if (slot >= slots_.size()) break;
      for (const std::uint64_t tagged : slots_[slot]) {
        Entry& entry = pool_[SlotIndex(tagged)];
        TMOTIF_CHECK(entry.alive && entry.generation == SlotTag(tagged));
        fn(entry);
      }
    }
  }

  /// Invokes `fn(Entry&, tail_id)` for every live entry whose last event's
  /// id lies in [id_begin, id_end); requires tail tracking. Stale refs
  /// (entries already evicted via their anchor) are dropped on the way.
  /// The tail slot is the id's source of truth — callers re-sync
  /// `entry.event_ids[num_events - 1]` from `tail_id` when positions may
  /// have shifted.
  template <typename Fn>
  void ForEachTailAnchored(std::uint64_t id_begin, std::uint64_t id_end,
                           Fn fn) {
    TMOTIF_CHECK(track_tails_);
    for (std::uint64_t id = std::max(id_begin, base_); id < id_end; ++id) {
      const std::size_t slot = static_cast<std::size_t>(id - base_);
      if (slot >= tail_slots_.size()) break;
      std::vector<std::uint64_t>& refs = tail_slots_[slot];
      for (std::size_t i = 0; i < refs.size();) {
        Entry& entry = pool_[SlotIndex(refs[i])];
        if (!entry.alive || entry.generation != SlotTag(refs[i])) {
          refs[i] = refs.back();
          refs.pop_back();
          continue;
        }
        fn(entry, id);
        ++i;
      }
    }
  }

  /// Monotone stamp for one flip pass (callers mark visited entries so an
  /// entry touching several flipped pairs is re-evaluated once).
  std::uint64_t NextVisitStamp() { return ++visit_counter_; }

  /// Live candidate instances (the store's memory footprint driver).
  std::size_t size() const { return live_; }
  /// Approximate resident bytes: entry pool + free list + anchor/tail slot
  /// deques + bucket references + a fixed per-bucket hash-node estimate.
  /// Computed from logical element counts (not allocator capacities), so
  /// the number is deterministic for a given stream replay — it feeds the
  /// stream.store_bytes gauge and tmotif_stream's final stats line.
  std::size_t ApproxBytes() const;
  /// Live candidates currently passing the coverage check.
  std::size_t num_counted() const { return num_counted_; }
  /// Maintained by callers flipping Entry::counted in place.
  void NoteCountedChange(bool now_counted) {
    if (now_counted) {
      ++num_counted_;
    } else {
      TMOTIF_CHECK(num_counted_ > 0);
      --num_counted_;
    }
  }

 private:
  static std::uint64_t UnorderedPairKey(NodeId u, NodeId v) {
    return u <= v ? NodePairKey(u, v) : NodePairKey(v, u);
  }
  static std::uint32_t SlotIndex(std::uint64_t tagged) {
    return static_cast<std::uint32_t>(tagged);
  }
  static std::uint32_t SlotTag(std::uint64_t tagged) {
    return static_cast<std::uint32_t>(tagged >> 32);
  }
  static std::uint64_t Tagged(std::uint32_t index, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }

  /// Unordered scope pairs of an entry; `fn(pair_key)`.
  template <typename Fn>
  static void ForEachPairKey(const Entry& entry, Fn fn) {
    for (int a = 0; a < entry.num_nodes; ++a) {
      for (int b = a + 1; b < entry.num_nodes; ++b) {
        fn(UnorderedPairKey(entry.nodes[static_cast<std::size_t>(a)],
                            entry.nodes[static_cast<std::size_t>(b)]));
      }
    }
  }

  void Free(Entry* entry, std::uint32_t index);
  /// Removes `tagged` from `entry`'s anchor slot. Physical removal must
  /// keep the (authoritative) anchor index exact.
  void EraseAnchorRef(const Entry& entry, std::uint64_t tagged);
  void CompactIfNeeded();

  std::vector<Entry> pool_;
  std::vector<std::uint32_t> free_list_;
  /// slots_[i] anchors entries whose first event has id base_ + i.
  std::deque<std::vector<std::uint64_t>> slots_;
  /// tail_slots_[i] anchors entries whose last event has id base_ + i
  /// (maintained only when track_tails_).
  std::deque<std::vector<std::uint64_t>> tail_slots_;
  bool track_tails_ = false;
  std::uint64_t base_ = 0;
  /// Unordered-node-pair key -> tagged entry references.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> buckets_;
  std::size_t live_ = 0;
  std::size_t num_counted_ = 0;
  /// Bucket references held by live entries (sum of their scope pairs).
  std::size_t live_pair_refs_ = 0;
  /// Bucket slots pointing at freed entries, not yet lazily removed.
  std::size_t dead_bucket_slots_ = 0;
  /// See SetCompactionSlack.
  std::size_t compaction_slack_ = 64;
  /// Monotone count of global bucket rebuilds (survives Reset).
  std::uint64_t compactions_ = 0;
  std::uint64_t visit_counter_ = 0;
};

}  // namespace tmotif

#endif  // TMOTIF_STREAM_INSTANCE_STORE_H_
