#ifndef TMOTIF_STREAM_WINDOW_GRAPH_H_
#define TMOTIF_STREAM_WINDOW_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iterator>
#include <vector>

#include "common/types.h"
#include "graph/event.h"
#include "stream/stream_window.h"

namespace tmotif {

/// Incrementally maintained per-node / per-edge indices over a
/// `StreamWindow` — the streaming counterpart of `TemporalGraph`'s CSR
/// indices, exposing the accessor subset the devirtualized enumeration core
/// (core/enumerate_core.h) needs, so the delta path counts directly on the
/// live window without rebuilding a graph per batch.
///
/// The static projection mirrors `TemporalGraph`'s per-node neighbor CSR
/// incrementally: each source node owns a small array of `EdgeCell`s (one
/// per live distinct directed edge), each holding the edge's occurrence ids
/// plus an SoA timestamp mirror. `FindEdge` scans the source's cells —
/// window out-degrees are small, so lookup is O(out-degree) with no hashing
/// — and a resolved `EdgeHandle` answers time-range counts with binary
/// searches over the flat timestamp deque.
///
/// Index entries are monotone *ids*: the event at window position `p`
/// always has id `offset_ + p`, where `offset_` advances by the number of
/// evicted events. Evicting the canonical prefix therefore renumbers
/// nothing (ids stay put, `offset_` moves), and appends assign fresh
/// contiguous ids. The one wrinkle is the trailing tie group: a batch event
/// can interleave *within* the window's final shared-timestamp run (the
/// EventTimeLess tiebreak orders by endpoints), shifting those events'
/// positions. `BeginUpdate` pops that tie group's entries (they are the
/// tail of every list they appear in) and `FinishUpdate` re-appends the
/// merged tail, so each batch costs O(evicted + tie group + entered) index
/// operations — never O(window).
class WindowGraph {
 public:
  using IdList = std::deque<std::uint64_t>;

  /// One live distinct directed static edge of the window: its target, the
  /// monotone ids of its occurrences, and the SoA timestamp mirror kept in
  /// lockstep (times[i] is the timestamp of the event with id ids[i]).
  struct EdgeCell {
    NodeId dst = kInvalidNode;
    IdList ids;
    std::deque<Timestamp> times;
  };

  /// Resolved edge: pointer to the live cell. Valid only until the next
  /// mutation (Reset / BeginUpdate / FinishUpdate) — the enumeration core
  /// resolves and uses handles strictly within one enumeration pass over a
  /// quiescent graph.
  using EdgeHandle = const EdgeCell*;
  static constexpr EdgeHandle kNoEdgeHandle = nullptr;

  /// Random-access iterator over an id list that yields current window
  /// positions (id - offset). Satisfies what std::upper_bound and the
  /// enumeration core's k-way merge need.
  class IndexIterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = EventIndex;
    using difference_type = std::ptrdiff_t;
    using pointer = const EventIndex*;
    using reference = EventIndex;

    IndexIterator() = default;
    IndexIterator(IdList::const_iterator it, std::uint64_t offset,
                  const StreamWindow* window)
        : it_(it), offset_(offset), window_(window) {}

    EventIndex operator*() const {
      return static_cast<EventIndex>(*it_ - offset_);
    }
    EventIndex operator[](difference_type n) const {
      return static_cast<EventIndex>(it_[n] - offset_);
    }
    /// Hot fields of the fronted event (same surface as
    /// TemporalGraph::IncidentIterator; resolved through the backing window
    /// — the streaming side has no inlined mirror).
    Timestamp time() const { return Fronted().time; }
    NodeId src() const { return Fronted().src; }
    NodeId dst() const { return Fronted().dst; }
    IndexIterator& operator++() { ++it_; return *this; }
    IndexIterator operator++(int) { IndexIterator t = *this; ++it_; return t; }
    IndexIterator& operator--() { --it_; return *this; }
    IndexIterator& operator+=(difference_type n) { it_ += n; return *this; }
    IndexIterator& operator-=(difference_type n) { it_ -= n; return *this; }
    friend IndexIterator operator+(IndexIterator a, difference_type n) {
      a += n;
      return a;
    }
    friend IndexIterator operator+(difference_type n, IndexIterator a) {
      a += n;
      return a;
    }
    friend IndexIterator operator-(IndexIterator a, difference_type n) {
      a -= n;
      return a;
    }
    friend difference_type operator-(const IndexIterator& a,
                                     const IndexIterator& b) {
      return a.it_ - b.it_;
    }
    friend bool operator==(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ != b.it_;
    }
    friend bool operator<(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ < b.it_;
    }

   private:
    const Event& Fronted() const {
      return window_->event(static_cast<std::size_t>(*it_ - offset_));
    }

    IdList::const_iterator it_{};
    std::uint64_t offset_ = 0;
    const StreamWindow* window_ = nullptr;
  };

  class IndexRange {
   public:
    IndexRange(IndexIterator begin, IndexIterator end)
        : begin_(begin), end_(end) {}
    IndexIterator begin() const { return begin_; }
    IndexIterator end() const { return end_; }
    std::size_t size() const {
      return static_cast<std::size_t>(end_ - begin_);
    }
    bool empty() const { return begin_ == end_; }

   private:
    IndexIterator begin_;
    IndexIterator end_;
  };

  /// `window` must outlive this graph; the graph mirrors it via
  /// Reset / BeginUpdate / FinishUpdate.
  explicit WindowGraph(const StreamWindow* window);

  // --- TemporalGraph-compatible accessor subset (enumeration core). ---
  EventIndex num_events() const {
    return static_cast<EventIndex>(window_->size());
  }
  const Event& event(EventIndex i) const {
    return window_->event(static_cast<std::size_t>(i));
  }
  Timestamp event_time(EventIndex i) const { return event(i).time; }
  NodeId event_src(EventIndex i) const { return event(i).src; }
  NodeId event_dst(EventIndex i) const { return event(i).dst; }

  /// Window positions of events incident to `node`, ascending. Nodes the
  /// window has never seen yield an empty range.
  IndexRange incident(NodeId node) const;

  /// Iterator into `incident(node)` fronting the first position > `after`
  /// (same contract as TemporalGraph::IncidentUpperBound).
  IndexIterator IncidentUpperBound(NodeId node, EventIndex after) const {
    const IndexRange range = incident(node);
    return std::upper_bound(range.begin(), range.end(), after);
  }

  /// Random-access iterator over one live edge's occurrence run: yields
  /// window positions, with `time()` from the cell's timestamp mirror in
  /// lockstep (same surface as TemporalGraph::EdgeOccurrenceIterator).
  class EdgeOccurrenceIterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = EventIndex;
    using difference_type = std::ptrdiff_t;
    using pointer = const EventIndex*;
    using reference = EventIndex;

    EdgeOccurrenceIterator() = default;
    EdgeOccurrenceIterator(IdList::const_iterator id,
                           std::deque<Timestamp>::const_iterator t,
                           std::uint64_t offset)
        : id_(id), t_(t), offset_(offset) {}

    EventIndex operator*() const {
      return static_cast<EventIndex>(*id_ - offset_);
    }
    EventIndex operator[](difference_type n) const {
      return static_cast<EventIndex>(id_[n] - offset_);
    }
    Timestamp time() const { return *t_; }

    EdgeOccurrenceIterator& operator++() { ++id_; ++t_; return *this; }
    EdgeOccurrenceIterator& operator+=(difference_type n) {
      id_ += n;
      t_ += n;
      return *this;
    }
    friend EdgeOccurrenceIterator operator+(EdgeOccurrenceIterator a,
                                            difference_type n) {
      a += n;
      return a;
    }
    friend difference_type operator-(const EdgeOccurrenceIterator& a,
                                     const EdgeOccurrenceIterator& b) {
      return a.id_ - b.id_;
    }
    friend bool operator==(const EdgeOccurrenceIterator& a,
                           const EdgeOccurrenceIterator& b) {
      return a.id_ == b.id_;
    }
    friend bool operator!=(const EdgeOccurrenceIterator& a,
                           const EdgeOccurrenceIterator& b) {
      return a.id_ != b.id_;
    }

   private:
    IdList::const_iterator id_{};
    std::deque<Timestamp>::const_iterator t_{};
    std::uint64_t offset_ = 0;
  };

  class EdgeOccurrenceRange {
   public:
    EdgeOccurrenceRange() = default;
    EdgeOccurrenceRange(EdgeOccurrenceIterator begin,
                        EdgeOccurrenceIterator end)
        : begin_(begin), end_(end) {}
    EdgeOccurrenceIterator begin() const { return begin_; }
    EdgeOccurrenceIterator end() const { return end_; }
    std::size_t size() const {
      return static_cast<std::size_t>(end_ - begin_);
    }
    bool empty() const { return begin_ == end_; }

   private:
    EdgeOccurrenceIterator begin_;
    EdgeOccurrenceIterator end_;
  };

  /// Resolves the directed static edge (src, dst) against the live window;
  /// `kNoEdgeHandle` when absent. Out-of-range ids resolve to absent.
  EdgeHandle FindEdge(NodeId src, NodeId dst) const;

  /// Occurrence run of the resolved edge (window positions + timestamps in
  /// lockstep), ascending.
  EdgeOccurrenceRange edge_occurrences(EdgeHandle edge) const {
    return EdgeOccurrenceRange(
        EdgeOccurrenceIterator(edge->ids.begin(), edge->times.begin(),
                               offset_),
        EdgeOccurrenceIterator(edge->ids.end(), edge->times.end(), offset_));
  }

  /// Number of the resolved edge's window occurrences with time < t / <= t
  /// (same rank contract as TemporalGraph).
  std::size_t EdgeLowerRank(EdgeHandle edge, Timestamp t) const;
  std::size_t EdgeUpperRank(EdgeHandle edge, Timestamp t) const;
  /// Occurrence count of the resolved edge with timestamp in [t_lo, t_hi].
  int CountEdgeEventsInTimeRange(EdgeHandle edge, Timestamp t_lo,
                                 Timestamp t_hi) const;

  /// True when another window event on the same directed edge as event `c`
  /// has timestamp in [t_lo, t_hi] (`c`'s own timestamp must lie inside the
  /// range): one id search to find `c`'s rank, then a look at the two rank
  /// neighbors. Same contract as TemporalGraph::HasAdjacentEdgeEventInRange.
  bool HasAdjacentEdgeEventInRange(EventIndex c, Timestamp t_lo,
                                   Timestamp t_hi) const;

  bool HasStaticEdge(NodeId src, NodeId dst) const {
    return FindEdge(src, dst) != kNoEdgeHandle;
  }
  /// Occurrence count of the directed static edge in the current window.
  std::size_t NumEdgeEvents(NodeId src, NodeId dst) const;

  bool HasIncidentInIndexRange(NodeId node, EventIndex lo,
                               EventIndex hi) const;
  int CountEdgeEventsInTimeRange(NodeId src, NodeId dst, Timestamp t_lo,
                                 Timestamp t_hi) const;
  /// Occurrence count of edge (src, dst) with window position strictly
  /// inside (lo, hi) — the index-range sibling, mirroring TemporalGraph.
  int CountEdgeEventsInIndexRange(NodeId src, NodeId dst, EventIndex lo,
                                  EventIndex hi) const;

  /// First window position with time >= t / > t (num_events() when none).
  EventIndex LowerBoundTime(Timestamp t) const;
  EventIndex UpperBoundTime(Timestamp t) const;

  // --- Incremental maintenance. ---

  /// Rebuilds every index from the backing window in O(window). Used at
  /// construction and by the full-recount fallbacks.
  void Reset();

  /// Pre-Apply half of a batch update: must be called with the same plan
  /// and sorted batch that will be passed to StreamWindow::Apply, *before*
  /// Apply mutates the window. Evicts the canonical prefix and pops the
  /// trailing tie group the merge may interleave with.
  void BeginUpdate(const IngestPlan& plan, const std::vector<Event>& batch);

  /// Post-Apply half: re-appends the merged tail (renumbered tie group +
  /// entered batch events) from the updated window.
  void FinishUpdate();

  /// Pre-Splice half of a late-event splice (StreamWindow::Splice): evicts
  /// the `num_evict`-event canonical prefix and pops every index entry for
  /// pre-eviction positions >= `cut` (they are the tail of every list they
  /// appear in, exactly like the trailing tie group — the splice merely
  /// moves the pop point from the tie boundary to the insertion cut).
  /// `FinishUpdate` then re-appends the merged, renumbered tail from the
  /// spliced window. Cost: O(evicted + events at or after the cut).
  void BeginSplice(std::size_t num_evict, std::size_t cut);

 private:
  void PopFrontEntry(IdList* list, std::uint64_t id);
  void PopBackEntry(IdList* list, std::uint64_t id);
  EdgeCell* MutableEdge(NodeId src, NodeId dst);
  void EraseEdgeIfEmpty(NodeId src, EdgeCell* cell);
  void PopEdgeFront(NodeId src, NodeId dst, std::uint64_t id);
  void PopEdgeBack(NodeId src, NodeId dst, std::uint64_t id);
  void AppendEntry(const Event& e, std::uint64_t id);

  const StreamWindow* window_;
  /// Id of the event at window position 0 (total evictions so far).
  std::uint64_t offset_ = 0;
  /// Per-node incident id lists (grown on demand; nodes whose events all
  /// expired keep an empty list).
  std::vector<IdList> incident_;
  /// Per-source adjacency cells of the live static projection (grown on
  /// demand; cells are erased when their occurrence list drains so
  /// HasStaticEdge stays exact). Cell order within a source is arbitrary.
  std::vector<std::vector<EdgeCell>> adjacency_;
  /// Between BeginUpdate and FinishUpdate: first post-Apply position whose
  /// index entries must be (re-)appended.
  std::size_t append_from_ = 0;
  bool pending_ = false;
};

}  // namespace tmotif

#endif  // TMOTIF_STREAM_WINDOW_GRAPH_H_
