#ifndef TMOTIF_STREAM_WINDOW_GRAPH_H_
#define TMOTIF_STREAM_WINDOW_GRAPH_H_

#include <cstdint>
#include <deque>
#include <iterator>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/event.h"
#include "stream/stream_window.h"

namespace tmotif {

/// Incrementally maintained per-node / per-edge indices over a
/// `StreamWindow` — the streaming counterpart of `TemporalGraph`'s CSR
/// indices, exposing the accessor subset the devirtualized enumeration core
/// (core/enumerate_core.h) needs, so the delta path counts directly on the
/// live window without rebuilding a graph per batch.
///
/// Index entries are monotone *ids*: the event at window position `p`
/// always has id `offset_ + p`, where `offset_` advances by the number of
/// evicted events. Evicting the canonical prefix therefore renumbers
/// nothing (ids stay put, `offset_` moves), and appends assign fresh
/// contiguous ids. The one wrinkle is the trailing tie group: a batch event
/// can interleave *within* the window's final shared-timestamp run (the
/// EventTimeLess tiebreak orders by endpoints), shifting those events'
/// positions. `BeginUpdate` pops that tie group's entries (they are the
/// tail of every list they appear in) and `FinishUpdate` re-appends the
/// merged tail, so each batch costs O(evicted + tie group + entered) index
/// operations — never O(window).
class WindowGraph {
 public:
  using IdList = std::deque<std::uint64_t>;

  /// Random-access iterator over an id list that yields current window
  /// positions (id - offset). Satisfies what std::upper_bound and the
  /// enumeration core's k-way merge need.
  class IndexIterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = EventIndex;
    using difference_type = std::ptrdiff_t;
    using pointer = const EventIndex*;
    using reference = EventIndex;

    IndexIterator() = default;
    IndexIterator(IdList::const_iterator it, std::uint64_t offset)
        : it_(it), offset_(offset) {}

    EventIndex operator*() const {
      return static_cast<EventIndex>(*it_ - offset_);
    }
    EventIndex operator[](difference_type n) const {
      return static_cast<EventIndex>(it_[n] - offset_);
    }
    IndexIterator& operator++() { ++it_; return *this; }
    IndexIterator operator++(int) { IndexIterator t = *this; ++it_; return t; }
    IndexIterator& operator--() { --it_; return *this; }
    IndexIterator& operator+=(difference_type n) { it_ += n; return *this; }
    IndexIterator& operator-=(difference_type n) { it_ -= n; return *this; }
    friend IndexIterator operator+(IndexIterator a, difference_type n) {
      a += n;
      return a;
    }
    friend IndexIterator operator+(difference_type n, IndexIterator a) {
      a += n;
      return a;
    }
    friend IndexIterator operator-(IndexIterator a, difference_type n) {
      a -= n;
      return a;
    }
    friend difference_type operator-(const IndexIterator& a,
                                     const IndexIterator& b) {
      return a.it_ - b.it_;
    }
    friend bool operator==(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ != b.it_;
    }
    friend bool operator<(const IndexIterator& a, const IndexIterator& b) {
      return a.it_ < b.it_;
    }

   private:
    IdList::const_iterator it_{};
    std::uint64_t offset_ = 0;
  };

  class IndexRange {
   public:
    IndexRange(IndexIterator begin, IndexIterator end)
        : begin_(begin), end_(end) {}
    IndexIterator begin() const { return begin_; }
    IndexIterator end() const { return end_; }
    std::size_t size() const {
      return static_cast<std::size_t>(end_ - begin_);
    }
    bool empty() const { return begin_ == end_; }

   private:
    IndexIterator begin_;
    IndexIterator end_;
  };

  /// `window` must outlive this graph; the graph mirrors it via
  /// Reset / BeginUpdate / FinishUpdate.
  explicit WindowGraph(const StreamWindow* window);

  // --- TemporalGraph-compatible accessor subset (enumeration core). ---
  EventIndex num_events() const {
    return static_cast<EventIndex>(window_->size());
  }
  const Event& event(EventIndex i) const {
    return window_->event(static_cast<std::size_t>(i));
  }
  Timestamp event_time(EventIndex i) const { return event(i).time; }
  NodeId event_src(EventIndex i) const { return event(i).src; }
  NodeId event_dst(EventIndex i) const { return event(i).dst; }

  /// Window positions of events incident to `node`, ascending. Nodes the
  /// window has never seen yield an empty range.
  IndexRange incident(NodeId node) const;

  bool HasStaticEdge(NodeId src, NodeId dst) const;
  /// Occurrence count of the directed static edge in the current window.
  std::size_t NumEdgeEvents(NodeId src, NodeId dst) const;

  bool HasIncidentInIndexRange(NodeId node, EventIndex lo,
                               EventIndex hi) const;
  int CountEdgeEventsInTimeRange(NodeId src, NodeId dst, Timestamp t_lo,
                                 Timestamp t_hi) const;

  /// First window position with time >= t / > t (num_events() when none).
  EventIndex LowerBoundTime(Timestamp t) const;
  EventIndex UpperBoundTime(Timestamp t) const;

  // --- Incremental maintenance. ---

  /// Rebuilds every index from the backing window in O(window). Used at
  /// construction and by the full-recount fallbacks.
  void Reset();

  /// Pre-Apply half of a batch update: must be called with the same plan
  /// and sorted batch that will be passed to StreamWindow::Apply, *before*
  /// Apply mutates the window. Evicts the canonical prefix and pops the
  /// trailing tie group the merge may interleave with.
  void BeginUpdate(const IngestPlan& plan, const std::vector<Event>& batch);

  /// Post-Apply half: re-appends the merged tail (renumbered tie group +
  /// entered batch events) from the updated window.
  void FinishUpdate();

 private:
  void PopFrontEntry(IdList* list, std::uint64_t id);
  void PopBackEntry(IdList* list, std::uint64_t id);
  void PopEdgeFront(NodeId src, NodeId dst, std::uint64_t id);
  void PopEdgeBack(NodeId src, NodeId dst, std::uint64_t id);
  void AppendEntry(const Event& e, std::uint64_t id);

  const StreamWindow* window_;
  /// Id of the event at window position 0 (total evictions so far).
  std::uint64_t offset_ = 0;
  /// Per-node incident id lists (grown on demand; nodes whose events all
  /// expired keep an empty list).
  std::vector<IdList> incident_;
  /// Per-directed-static-edge occurrence id lists; entries are erased when
  /// their list drains so HasStaticEdge stays exact.
  std::unordered_map<std::uint64_t, IdList> edges_;
  /// Between BeginUpdate and FinishUpdate: first post-Apply position whose
  /// index entries must be (re-)appended.
  std::size_t append_from_ = 0;
  bool pending_ = false;
};

}  // namespace tmotif

#endif  // TMOTIF_STREAM_WINDOW_GRAPH_H_
