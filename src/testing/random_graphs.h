#ifndef TMOTIF_TESTING_RANDOM_GRAPHS_H_
#define TMOTIF_TESTING_RANDOM_GRAPHS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "graph/temporal_graph.h"

namespace tmotif {
namespace testing {

/// Shape of a small random temporal graph for differential testing. Unlike
/// the realistic generator (gen/generator.h), these graphs are uniform and
/// tiny on purpose: small enough that the brute-force oracle stays cheap,
/// adversarial enough (duplicate timestamps, repeated edges, optional
/// durations) to exercise the enumerator's tie-breaking and timing edges.
struct RandomGraphSpec {
  int num_nodes = 6;
  int num_events = 16;
  /// Timestamps are drawn uniformly from [0, max_time]. Keeping this within
  /// a small multiple of num_events forces timestamp collisions.
  Timestamp max_time = 48;
  /// Probability that an event reuses an already-drawn timestamp instead of
  /// drawing a fresh one (stresses simultaneous-event handling).
  double prob_duplicate_time = 0.25;
  /// Durations are drawn uniformly from [0, max_duration] (0 = instant
  /// events, the convention of most models).
  Duration max_duration = 0;
  /// When positive, events get labels uniform in [0, num_labels).
  int num_labels = 0;
  /// When positive, every node gets a label uniform in [0, num_node_labels)
  /// (Song et al. patterns constrain node labels).
  int num_node_labels = 0;

  /// "n6 e16 t48 dup0.25 d0 l0 nl0" style description for failure messages.
  std::string ToString() const;
};

/// Builds a random graph, deterministic in (seed, spec).
TemporalGraph RandomGraph(std::uint64_t seed, const RandomGraphSpec& spec);

/// Runs `fn(seed, graph)` on `count` random graphs with seeds
/// base_seed, base_seed + 1, ..., base_seed + count - 1.
void ForEachRandomGraph(
    std::uint64_t base_seed, int count, const RandomGraphSpec& spec,
    const std::function<void(std::uint64_t seed, const TemporalGraph& graph)>&
        fn);

}  // namespace testing
}  // namespace tmotif

#endif  // TMOTIF_TESTING_RANDOM_GRAPHS_H_
