#include "testing/random_graphs.h"

#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace tmotif {
namespace testing {

std::string RandomGraphSpec::ToString() const {
  char buf[112];
  std::snprintf(buf, sizeof(buf), "n%d e%d t%lld dup%.2f d%lld l%d nl%d",
                num_nodes, num_events, static_cast<long long>(max_time),
                prob_duplicate_time, static_cast<long long>(max_duration),
                num_labels, num_node_labels);
  return buf;
}

TemporalGraph RandomGraph(std::uint64_t seed, const RandomGraphSpec& spec) {
  TMOTIF_CHECK(spec.num_nodes >= 2);
  TMOTIF_CHECK(spec.num_events >= 0);
  TMOTIF_CHECK(spec.max_time >= 0);
  Rng rng(seed);
  TemporalGraphBuilder builder;
  builder.SetMinNumNodes(spec.num_nodes);
  std::vector<Timestamp> drawn_times;
  drawn_times.reserve(static_cast<std::size_t>(spec.num_events));
  for (int i = 0; i < spec.num_events; ++i) {
    const NodeId src =
        static_cast<NodeId>(rng.UniformU64(static_cast<std::uint64_t>(spec.num_nodes)));
    // Uniform over the other num_nodes - 1 nodes; the builder rejects
    // self-loops, so never draw src == dst.
    NodeId dst = static_cast<NodeId>(
        rng.UniformU64(static_cast<std::uint64_t>(spec.num_nodes - 1)));
    if (dst >= src) ++dst;
    Timestamp time;
    if (!drawn_times.empty() && rng.Bernoulli(spec.prob_duplicate_time)) {
      time = drawn_times[static_cast<std::size_t>(
          rng.UniformU64(drawn_times.size()))];
    } else {
      time = static_cast<Timestamp>(rng.UniformInt(0, spec.max_time));
    }
    drawn_times.push_back(time);
    const Duration duration =
        spec.max_duration > 0
            ? static_cast<Duration>(rng.UniformInt(0, spec.max_duration))
            : 0;
    const Label label =
        spec.num_labels > 0
            ? static_cast<Label>(rng.UniformU64(
                  static_cast<std::uint64_t>(spec.num_labels)))
            : kNoLabel;
    builder.AddEvent(src, dst, time, duration, label);
  }
  if (spec.num_node_labels > 0) {
    for (NodeId n = 0; n < spec.num_nodes; ++n) {
      builder.SetNodeLabel(
          n, static_cast<Label>(rng.UniformU64(
                 static_cast<std::uint64_t>(spec.num_node_labels))));
    }
  }
  return builder.Build();
}

void ForEachRandomGraph(
    std::uint64_t base_seed, int count, const RandomGraphSpec& spec,
    const std::function<void(std::uint64_t seed, const TemporalGraph& graph)>&
        fn) {
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    fn(seed, RandomGraph(seed, spec));
  }
}

}  // namespace testing
}  // namespace tmotif
