#ifndef TMOTIF_TESTING_REFERENCE_ORACLE_H_
#define TMOTIF_TESTING_REFERENCE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "core/counter.h"
#include "core/enumerator.h"
#include "core/motif_code.h"
#include "graph/temporal_graph.h"

namespace tmotif {
namespace testing {

/// One motif instance as found by the brute-force oracle.
struct ReferenceInstance {
  /// Event indices, ascending (and ascending in time).
  std::vector<EventIndex> event_indices;
  /// Canonical motif code, computed by the oracle's own relabeling (not by
  /// core/motif_code.h, so codes are cross-checked too).
  MotifCode code;

  friend bool operator==(const ReferenceInstance& a,
                         const ReferenceInstance& b) {
    return a.event_indices == b.event_indices && a.code == b.code;
  }
  friend bool operator<(const ReferenceInstance& a,
                        const ReferenceInstance& b) {
    return a.event_indices < b.event_indices;
  }
};

/// Brute-force reference enumerator: tries *every* ascending k-subset of the
/// graph's events and keeps the ones accepted by `IsValidInstance`. No
/// pruning, no candidate generation, no shared code with the DFS enumerator
/// beyond the instance predicate itself — deliberately simple so it can
/// serve as the oracle in differential tests. Cost is C(num_events, k)
/// predicate evaluations; keep graphs small (see testing/random_graphs.h).
///
/// `options.max_instances` is ignored (the oracle always enumerates
/// exhaustively); instances are returned sorted by event-index tuple.
std::vector<ReferenceInstance> ReferenceEnumerate(
    const TemporalGraph& graph, const EnumerationOptions& options);

/// Number of instances the oracle accepts.
std::uint64_t ReferenceCount(const TemporalGraph& graph,
                             const EnumerationOptions& options);

/// Oracle instances tallied by canonical code (reference for CountMotifs).
MotifCounts ReferenceCountMotifs(const TemporalGraph& graph,
                                 const EnumerationOptions& options);

}  // namespace testing
}  // namespace tmotif

#endif  // TMOTIF_TESTING_REFERENCE_ORACLE_H_
