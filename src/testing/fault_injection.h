#ifndef TMOTIF_TESTING_FAULT_INJECTION_H_
#define TMOTIF_TESTING_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/fault_points.h"

// Test-side fault-injection harness over the common/fault_points.h
// registry. Tests arm named fault points with RAII scopes so a failing
// assertion can never leave a point armed for the next test; the spec
// builders cover the common shapes (fail the nth hit, fail always, fail
// with a seeded probability). The fault-point catalog is in
// docs/RESILIENCE.md.

namespace tmotif {
namespace testing {

/// Arms one fault point for the lifetime of the scope and disarms it on
/// destruction. Counters (hits/fires) read through the live registry, so
/// query them before the scope ends.
class ScopedFault {
 public:
  ScopedFault(std::string point, const fault::FaultSpec& spec)
      : point_(std::move(point)) {
    fault::Arm(point_, spec);
  }
  ~ScopedFault() { fault::Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }
  std::uint64_t hits() const { return fault::HitCount(point_); }
  std::uint64_t fires() const { return fault::FireCount(point_); }

 private:
  std::string point_;
};

/// Safety net for tests that arm points manually: disarms everything on
/// destruction.
class FaultInjectionGuard {
 public:
  FaultInjectionGuard() = default;
  ~FaultInjectionGuard() { fault::DisarmAll(); }
  FaultInjectionGuard(const FaultInjectionGuard&) = delete;
  FaultInjectionGuard& operator=(const FaultInjectionGuard&) = delete;
};

/// The first hit fires, once.
fault::FaultSpec FailOnce(std::int64_t payload = 0);

/// The nth hit (1-based) fires, once.
fault::FaultSpec FailNth(std::uint64_t n, std::int64_t payload = 0);

/// Every hit fires.
fault::FaultSpec FailAlways(std::int64_t payload = 0);

/// Every hit fires independently with probability `p`, deterministically
/// derived from `seed` and the hit index.
fault::FaultSpec FailWithProbability(double p, std::uint64_t seed,
                                     std::int64_t payload = 0);

}  // namespace testing
}  // namespace tmotif

#endif  // TMOTIF_TESTING_FAULT_INJECTION_H_
