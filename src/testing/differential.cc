#include "testing/differential.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "core/counter.h"
#include "core/motif_code.h"
#include "testing/reference_oracle.h"

namespace tmotif {
namespace testing {

namespace {

constexpr std::size_t kMaxReportedMismatches = 8;

}  // namespace

std::string DifferentialReport::Summary() const {
  char head[64];
  std::snprintf(head, sizeof(head), "fast=%llu oracle=%llu",
                static_cast<unsigned long long>(fast_count),
                static_cast<unsigned long long>(oracle_count));
  std::string out = head;
  const std::size_t shown =
      std::min(mismatches.size(), kMaxReportedMismatches);
  for (std::size_t i = 0; i < shown; ++i) {
    out += "\n  ";
    out += mismatches[i];
  }
  if (mismatches.size() > shown) {
    out += "\n  ... (" +
           std::to_string(mismatches.size() - shown) + " more)";
  }
  return out;
}

std::string DescribeEvent(const TemporalGraph& graph, EventIndex index) {
  const Event& e = graph.event(index);
  char buf[96];
  if (e.duration != 0) {
    std::snprintf(buf, sizeof(buf), "#%d: %d->%d @%lld (+%lld)",
                  static_cast<int>(index), e.src, e.dst,
                  static_cast<long long>(e.time),
                  static_cast<long long>(e.duration));
  } else {
    std::snprintf(buf, sizeof(buf), "#%d: %d->%d @%lld",
                  static_cast<int>(index), e.src, e.dst,
                  static_cast<long long>(e.time));
  }
  return buf;
}

std::string DescribeInstance(const TemporalGraph& graph,
                             const std::vector<EventIndex>& event_indices) {
  std::string out = "[";
  for (std::size_t i = 0; i < event_indices.size(); ++i) {
    if (i > 0) out += ", ";
    out += DescribeEvent(graph, event_indices[i]);
  }
  out += "]";
  return out;
}

DifferentialReport DiffAgainstOracle(const TemporalGraph& graph,
                                     const EnumerationOptions& options) {
  TMOTIF_CHECK_MSG(options.max_instances == 0,
                   "differential checks require exhaustive enumeration");
  DifferentialReport report;

  const std::vector<ReferenceInstance> oracle =
      ReferenceEnumerate(graph, options);
  report.oracle_count = oracle.size();

  std::vector<ReferenceInstance> fast;
  const std::uint64_t visited = EnumerateInstances(
      graph, options, [&](const MotifInstance& instance) {
        ReferenceInstance copy;
        copy.event_indices.assign(
            instance.event_indices,
            instance.event_indices + instance.num_events);
        copy.code = MotifCode(instance.code);
        fast.push_back(std::move(copy));
      });
  report.fast_count = fast.size();
  if (visited != fast.size()) {
    report.mismatches.push_back(
        "EnumerateInstances return value " + std::to_string(visited) +
        " != number of visitor calls " + std::to_string(fast.size()));
  }

  // The DFS's emission order is not part of the contract; compare as sets.
  std::sort(fast.begin(), fast.end());
  for (std::size_t i = 1; i < fast.size(); ++i) {
    if (fast[i].event_indices == fast[i - 1].event_indices) {
      report.mismatches.push_back(
          "duplicate instance " +
          DescribeInstance(graph, fast[i].event_indices));
    }
  }

  std::size_t fi = 0;
  std::size_t oi = 0;
  while (fi < fast.size() || oi < oracle.size()) {
    if (oi == oracle.size() ||
        (fi < fast.size() &&
         fast[fi].event_indices < oracle[oi].event_indices)) {
      report.mismatches.push_back(
          "extra instance (fast only): " +
          DescribeInstance(graph, fast[fi].event_indices));
      ++fi;
    } else if (fi == fast.size() ||
               oracle[oi].event_indices < fast[fi].event_indices) {
      report.mismatches.push_back(
          "missing instance (oracle only): " +
          DescribeInstance(graph, oracle[oi].event_indices));
      ++oi;
    } else {
      if (fast[fi].code != oracle[oi].code) {
        report.mismatches.push_back(
            "code mismatch on " +
            DescribeInstance(graph, fast[fi].event_indices) + ": fast=" +
            fast[fi].code + " oracle=" + oracle[oi].code);
      }
      const MotifCode encoded = EncodeInstance(
          graph, fast[fi].event_indices.data(),
          static_cast<int>(fast[fi].event_indices.size()));
      if (encoded != oracle[oi].code) {
        report.mismatches.push_back(
            "EncodeInstance disagrees on " +
            DescribeInstance(graph, fast[fi].event_indices) +
            ": encoded=" + encoded + " oracle=" + oracle[oi].code);
      }
      ++fi;
      ++oi;
    }
  }

  const std::uint64_t counted = CountInstances(graph, options);
  if (counted != report.oracle_count) {
    report.mismatches.push_back(
        "CountInstances=" + std::to_string(counted) +
        " != oracle count " + std::to_string(report.oracle_count));
  }

  const MotifCounts fast_table = CountMotifs(graph, options);
  const MotifCounts oracle_table = ReferenceCountMotifs(graph, options);
  if (fast_table.total() != oracle_table.total() ||
      fast_table.num_codes() != oracle_table.num_codes()) {
    report.mismatches.push_back(
        "CountMotifs totals differ: fast total=" +
        std::to_string(fast_table.total()) + " codes=" +
        std::to_string(fast_table.num_codes()) + ", oracle total=" +
        std::to_string(oracle_table.total()) + " codes=" +
        std::to_string(oracle_table.num_codes()));
  }
  for (const auto& [code, count] : oracle_table.raw()) {
    if (fast_table.count(code) != count) {
      report.mismatches.push_back(
          "CountMotifs[" + code + "]=" +
          std::to_string(fast_table.count(code)) + " != oracle " +
          std::to_string(count));
    }
  }
  return report;
}

}  // namespace testing
}  // namespace tmotif
