#include "testing/fault_injection.h"

#include "common/check.h"

namespace tmotif {
namespace testing {

fault::FaultSpec FailOnce(std::int64_t payload) { return FailNth(1, payload); }

fault::FaultSpec FailNth(std::uint64_t n, std::int64_t payload) {
  TMOTIF_CHECK(n >= 1);
  fault::FaultSpec spec;
  spec.skip_hits = n - 1;
  spec.max_fires = 1;
  spec.payload = payload;
  return spec;
}

fault::FaultSpec FailAlways(std::int64_t payload) {
  fault::FaultSpec spec;
  spec.max_fires = -1;
  spec.payload = payload;
  return spec;
}

fault::FaultSpec FailWithProbability(double p, std::uint64_t seed,
                                     std::int64_t payload) {
  TMOTIF_CHECK(p >= 0.0 && p <= 1.0);
  fault::FaultSpec spec;
  spec.max_fires = -1;
  spec.payload = payload;
  spec.probability = p;
  spec.seed = seed;
  return spec;
}

}  // namespace testing
}  // namespace tmotif
