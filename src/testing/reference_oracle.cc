#include "testing/reference_oracle.h"

#include <algorithm>

#include "common/check.h"

namespace tmotif {
namespace testing {

namespace {

/// Relabels the instance's nodes by order of first appearance and renders
/// the 2n-digit code. Independent of core/motif_code.h on purpose: the
/// differential tests compare this against both the enumerator's codes and
/// `EncodeInstance`.
MotifCode OracleCode(const TemporalGraph& graph,
                     const std::vector<EventIndex>& event_indices) {
  std::vector<NodeId> order;
  const auto digit_of = [&](NodeId node) {
    for (std::size_t d = 0; d < order.size(); ++d) {
      if (order[d] == node) return static_cast<int>(d);
    }
    order.push_back(node);
    return static_cast<int>(order.size()) - 1;
  };
  MotifCode code;
  code.reserve(2 * event_indices.size());
  for (const EventIndex idx : event_indices) {
    const Event& e = graph.event(idx);
    code.push_back(static_cast<char>('0' + digit_of(e.src)));
    code.push_back(static_cast<char>('0' + digit_of(e.dst)));
  }
  return code;
}

}  // namespace

std::vector<ReferenceInstance> ReferenceEnumerate(
    const TemporalGraph& graph, const EnumerationOptions& options) {
  TMOTIF_CHECK(options.num_events >= 1);
  const int k = options.num_events;
  const EventIndex n = graph.num_events();
  std::vector<ReferenceInstance> found;
  if (n < k) return found;

  // Classic lexicographic k-combination walk over event indices.
  std::vector<EventIndex> subset(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) subset[static_cast<std::size_t>(i)] = i;
  while (true) {
    if (IsValidInstance(graph, subset, options)) {
      found.push_back({subset, OracleCode(graph, subset)});
    }
    int pos = k - 1;
    while (pos >= 0 &&
           subset[static_cast<std::size_t>(pos)] == n - k + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++subset[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j) {
      subset[static_cast<std::size_t>(j)] =
          subset[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  // The walk is already lexicographic, but sort anyway so the contract does
  // not depend on the iteration scheme.
  std::sort(found.begin(), found.end());
  return found;
}

std::uint64_t ReferenceCount(const TemporalGraph& graph,
                             const EnumerationOptions& options) {
  return ReferenceEnumerate(graph, options).size();
}

MotifCounts ReferenceCountMotifs(const TemporalGraph& graph,
                                 const EnumerationOptions& options) {
  MotifCounts counts;
  for (const ReferenceInstance& instance :
       ReferenceEnumerate(graph, options)) {
    counts.Add(instance.code);
  }
  return counts;
}

}  // namespace testing
}  // namespace tmotif
