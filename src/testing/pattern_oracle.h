#ifndef TMOTIF_TESTING_PATTERN_ORACLE_H_
#define TMOTIF_TESTING_PATTERN_ORACLE_H_

#include <cstdint>
#include <vector>

#include "core/models/song.h"
#include "graph/temporal_graph.h"

namespace tmotif {
namespace testing {

/// One complete pattern match as found by the brute-force oracle:
/// `event_indices[i]` is the graph event assigned to pattern edge `i`.
struct ReferencePatternMatch {
  std::vector<EventIndex> event_indices;

  friend bool operator==(const ReferencePatternMatch& a,
                         const ReferencePatternMatch& b) {
    return a.event_indices == b.event_indices;
  }
  friend bool operator<(const ReferencePatternMatch& a,
                        const ReferencePatternMatch& b) {
    return a.event_indices < b.event_indices;
  }
};

/// Brute-force reference for the Song et al. streaming pattern matcher
/// (core/models/song.h): tries *every* injective assignment of graph events
/// to pattern edges and keeps the ones satisfying the pattern semantics —
///   * edge-label predicates (`kNoLabel` matches anything),
///   * injective, node-label-consistent variable bindings (labels from the
///     graph; a non-wildcard predicate never matches an unlabeled graph),
///   * strict precedence (`order`) between assigned event timestamps, and
///   * the dW window: max assigned time − min assigned time <= delta_w.
/// No shared code with EventPatternMatcher beyond the EventPattern struct
/// itself; cost is O(num_events ^ num_edges) — keep graphs small.
/// Matches are returned sorted by assignment tuple.
std::vector<ReferencePatternMatch> ReferencePatternMatches(
    const TemporalGraph& graph, const EventPattern& pattern);

/// Number of matches the oracle accepts (what CountPatternMatches must
/// reproduce).
std::uint64_t ReferenceCountPatternMatches(const TemporalGraph& graph,
                                           const EventPattern& pattern);

}  // namespace testing
}  // namespace tmotif

#endif  // TMOTIF_TESTING_PATTERN_ORACLE_H_
