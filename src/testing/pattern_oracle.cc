#include "testing/pattern_oracle.h"

#include <algorithm>

#include "common/check.h"

namespace tmotif {
namespace testing {

namespace {

/// Checks one complete edge -> event assignment against the pattern
/// semantics, the straightforward way.
bool AssignmentMatches(const TemporalGraph& graph,
                       const EventPattern& pattern,
                       const std::vector<EventIndex>& assignment) {
  const std::vector<Label>& node_labels = graph.node_labels();
  std::vector<NodeId> bindings(static_cast<std::size_t>(pattern.num_vars),
                               kInvalidNode);
  const auto bind = [&](int var, NodeId node) {
    NodeId& slot = bindings[static_cast<std::size_t>(var)];
    if (slot != kInvalidNode) return slot == node;
    for (const NodeId bound : bindings) {
      if (bound == node) return false;  // Injectivity.
    }
    if (!pattern.var_labels.empty()) {
      const Label want = pattern.var_labels[static_cast<std::size_t>(var)];
      if (want != kNoLabel) {
        if (node < 0 || node >= static_cast<NodeId>(node_labels.size())) {
          return false;
        }
        if (node_labels[static_cast<std::size_t>(node)] != want) return false;
      }
    }
    slot = node;
    return true;
  };

  for (std::size_t i = 0; i < pattern.edges.size(); ++i) {
    const PatternEdge& pe = pattern.edges[i];
    const Event& e = graph.event(assignment[i]);
    if (pe.edge_label != kNoLabel && pe.edge_label != e.label) return false;
    if (!bind(pe.src_var, e.src) || !bind(pe.dst_var, e.dst)) return false;
  }
  for (const auto& [before, after] : pattern.order) {
    if (graph.event(assignment[static_cast<std::size_t>(before)]).time >=
        graph.event(assignment[static_cast<std::size_t>(after)]).time) {
      return false;
    }
  }
  Timestamp t_min = graph.event(assignment[0]).time;
  Timestamp t_max = t_min;
  for (const EventIndex idx : assignment) {
    t_min = std::min(t_min, graph.event(idx).time);
    t_max = std::max(t_max, graph.event(idx).time);
  }
  return t_max - t_min <= pattern.delta_w;
}

void EnumerateAssignments(const TemporalGraph& graph,
                          const EventPattern& pattern,
                          std::vector<EventIndex>* assignment,
                          std::vector<char>* used,
                          std::vector<ReferencePatternMatch>* out) {
  const std::size_t edge = assignment->size();
  if (edge == pattern.edges.size()) {
    if (AssignmentMatches(graph, pattern, *assignment)) {
      out->push_back(ReferencePatternMatch{*assignment});
    }
    return;
  }
  for (EventIndex i = 0; i < graph.num_events(); ++i) {
    if ((*used)[static_cast<std::size_t>(i)]) continue;  // Distinct events.
    (*used)[static_cast<std::size_t>(i)] = 1;
    assignment->push_back(i);
    EnumerateAssignments(graph, pattern, assignment, used, out);
    assignment->pop_back();
    (*used)[static_cast<std::size_t>(i)] = 0;
  }
}

}  // namespace

std::vector<ReferencePatternMatch> ReferencePatternMatches(
    const TemporalGraph& graph, const EventPattern& pattern) {
  TMOTIF_CHECK_MSG(pattern.Valid(), "invalid event pattern");
  std::vector<ReferencePatternMatch> matches;
  std::vector<EventIndex> assignment;
  std::vector<char> used(static_cast<std::size_t>(graph.num_events()), 0);
  EnumerateAssignments(graph, pattern, &assignment, &used, &matches);
  std::sort(matches.begin(), matches.end());
  return matches;
}

std::uint64_t ReferenceCountPatternMatches(const TemporalGraph& graph,
                                           const EventPattern& pattern) {
  return static_cast<std::uint64_t>(
      ReferencePatternMatches(graph, pattern).size());
}

}  // namespace testing
}  // namespace tmotif
