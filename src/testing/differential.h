#ifndef TMOTIF_TESTING_DIFFERENTIAL_H_
#define TMOTIF_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "graph/temporal_graph.h"

namespace tmotif {
namespace testing {

/// Result of cross-checking the fast enumeration stack against the
/// brute-force oracle on one (graph, options) pair.
struct DifferentialReport {
  std::uint64_t fast_count = 0;
  std::uint64_t oracle_count = 0;
  /// Human-readable discrepancies; empty when everything agrees.
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
  /// Joins the mismatches (capped) into one failure message.
  std::string Summary() const;
};

/// Cross-checks, on one graph under one option set:
///   * EnumerateInstances against ReferenceEnumerate — same instance set
///     (as event-index tuples) and identical per-instance codes;
///   * the enumerator's codes against `EncodeInstance` (motif_code.h);
///   * CountInstances against the oracle count;
///   * CountMotifs against ReferenceCountMotifs, code by code.
/// `options.max_instances` must be 0 (truncated runs cannot be diffed).
DifferentialReport DiffAgainstOracle(const TemporalGraph& graph,
                                     const EnumerationOptions& options);

/// Renders one event as "#idx: src->dst @t (+dur)" for diagnostics.
std::string DescribeEvent(const TemporalGraph& graph, EventIndex index);

/// Renders an instance as its event list, e.g. "[#0: 1->2 @3, #4: 2->5 @7]".
std::string DescribeInstance(const TemporalGraph& graph,
                             const std::vector<EventIndex>& event_indices);

}  // namespace testing
}  // namespace tmotif

#endif  // TMOTIF_TESTING_DIFFERENTIAL_H_
