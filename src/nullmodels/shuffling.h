#ifndef TMOTIF_NULLMODELS_SHUFFLING_H_
#define TMOTIF_NULLMODELS_SHUFFLING_H_

#include "common/random.h"
#include "graph/temporal_graph.h"

namespace tmotif {

/// Randomized reference models for temporal networks (Gauvin et al., the
/// paper's reference [50]). The paper's "Comparison criteria" discussion
/// reports that available null models are either too restrictive (counts
/// barely change) or too loose (everything looks significant); the
/// bench_ablation_nullmodels binary reproduces that observation.

/// Permutes the multiset of timestamps across events; static structure is
/// preserved exactly, temporal correlations are destroyed ("time shuffle").
TemporalGraph ShuffleTimestamps(const TemporalGraph& graph, Rng* rng);

/// Permutes the inter-event gaps of the global event sequence while keeping
/// each event's (src, dst); preserves the gap distribution (burstiness) but
/// decouples it from structure.
TemporalGraph ShuffleInterEventTimes(const TemporalGraph& graph, Rng* rng);

/// Link shuffle: permutes the (src, dst) endpoint pairs across events,
/// preserving each edge's event sequence length distribution and the global
/// timestamp sequence, but rewiring who interacts with whom.
TemporalGraph ShuffleLinks(const TemporalGraph& graph, Rng* rng);

/// Replaces every timestamp with an i.i.d. uniform draw over the original
/// timespan (the loosest reference model).
TemporalGraph UniformTimes(const TemporalGraph& graph, Rng* rng);

}  // namespace tmotif

#endif  // TMOTIF_NULLMODELS_SHUFFLING_H_
