#include "nullmodels/shuffling.h"

#include <algorithm>
#include <vector>

namespace tmotif {

namespace {

TemporalGraph Rebuild(const TemporalGraph& graph,
                      const std::vector<Event>& events) {
  TemporalGraphBuilder builder;
  builder.SetMinNumNodes(graph.num_nodes());
  for (const Event& e : events) builder.AddEvent(e);
  return builder.Build();
}

}  // namespace

TemporalGraph ShuffleTimestamps(const TemporalGraph& graph, Rng* rng) {
  std::vector<Timestamp> times;
  times.reserve(static_cast<std::size_t>(graph.num_events()));
  for (const Event& e : graph.events()) times.push_back(e.time);
  rng->Shuffle(&times);
  std::vector<Event> events = graph.events();
  for (std::size_t i = 0; i < events.size(); ++i) events[i].time = times[i];
  return Rebuild(graph, events);
}

TemporalGraph ShuffleInterEventTimes(const TemporalGraph& graph, Rng* rng) {
  if (graph.num_events() < 3) return Rebuild(graph, graph.events());
  std::vector<Timestamp> gaps;
  gaps.reserve(static_cast<std::size_t>(graph.num_events() - 1));
  for (EventIndex i = 1; i < graph.num_events(); ++i) {
    gaps.push_back(graph.event(i).time - graph.event(i - 1).time);
  }
  rng->Shuffle(&gaps);
  std::vector<Event> events = graph.events();
  Timestamp t = events.front().time;
  for (std::size_t i = 1; i < events.size(); ++i) {
    t += gaps[i - 1];
    events[i].time = t;
  }
  return Rebuild(graph, events);
}

TemporalGraph ShuffleLinks(const TemporalGraph& graph, Rng* rng) {
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(graph.num_events()));
  for (const Event& e : graph.events()) endpoints.emplace_back(e.src, e.dst);
  rng->Shuffle(&endpoints);
  std::vector<Event> events = graph.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].src = endpoints[i].first;
    events[i].dst = endpoints[i].second;
  }
  return Rebuild(graph, events);
}

TemporalGraph UniformTimes(const TemporalGraph& graph, Rng* rng) {
  const Timestamp lo = graph.min_time();
  const Timestamp hi = graph.max_time();
  std::vector<Event> events = graph.events();
  for (Event& e : events) e.time = rng->UniformInt(lo, hi);
  return Rebuild(graph, events);
}

}  // namespace tmotif
