#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/report.h"

namespace tmotif {

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale_multiplier = std::atof(arg + 8);
      if (args.scale_multiplier <= 0.0) {
        std::fprintf(stderr, "--scale must be positive\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out_dir = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=X] [--seed=N] [--out=DIR]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

double EffectiveScale(DatasetId id, const BenchArgs& args) {
  return DefaultBenchScale(id) * args.scale_multiplier;
}

TemporalGraph LoadBenchDataset(DatasetId id, const BenchArgs& args) {
  return GenerateDataset(id, EffectiveScale(id, args), args.seed);
}

void PrintBenchHeader(const std::string& title, const std::string& paper_ref,
                      const BenchArgs& args) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Datasets: synthetic presets (see DESIGN.md), scale x%.2f, "
              "seed %llu\n",
              args.scale_multiplier,
              static_cast<unsigned long long>(args.seed));
  std::printf("================================================================\n\n");
}

void WriteBenchResult(const BenchArgs& args, const std::string& name,
                      double seconds) {
  WriteBenchResult(args, name, seconds, {});
}

void WriteBenchResult(
    const BenchArgs& args, const std::string& name, double seconds,
    const std::vector<std::pair<std::string, double>>& extra) {
  const std::string path =
      BenchOutputPath(args.out_dir, "BENCH_" + name + ".json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file,
               "{\"bench\": \"%s\", \"scale\": %.4f, \"seed\": %llu, "
               "\"seconds\": %.6f",
               name.c_str(), args.scale_multiplier,
               static_cast<unsigned long long>(args.seed), seconds);
  for (const auto& [key, value] : extra) {
    std::fprintf(file, ", \"%s\": %.6f", key.c_str(), value);
  }
  std::fprintf(file, "}\n");
  std::fclose(file);
}

std::vector<DatasetId> MessageDatasets() {
  return {DatasetId::kCollegeMsg, DatasetId::kSmsCopenhagen,
          DatasetId::kSmsA};
}

WallTimer::WallTimer()
    : start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double WallTimer::Seconds() const {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace tmotif
