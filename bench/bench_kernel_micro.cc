// bench_kernel_micro: per-kernel microbenchmarks of the vectorized
// counting core (src/core/simd/). Each of the four kernels — the k-way
// merge-union candidate gather, the swiss-table probe-group matcher, the
// packed-code distinct-pair scan, and the run-level code pre-filter — is
// timed on the scalar reference table and on the best table the host CPU
// can dispatch, over workloads shaped like the enumerator's real traffic
// (overlapping incident runs, half-hit probe groups, 8-event codes).
//
// Rows go to stdout; BENCH_kernel_micro.json records
// <kernel>_scalar_ns / <kernel>_best_ns (ns per op, informational) and
// <kernel>_speedup (best-ISA over scalar, gated higher-is-better by
// tools/bench_diff so a change that quietly devectorizes a kernel fails
// CI on AVX2 hardware), plus the numeric dispatch level of the timed
// "best" table.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/enumerate_core.h"
#include "core/simd/dispatch.h"
#include "core/simd/kernels.h"

namespace tmotif {
namespace {

#if defined(__GNUC__) || defined(__clang__)
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r"(value) : : "memory");
}
#else
template <typename T>
inline void DoNotOptimize(T& value) {
  volatile T sink = value;
  (void)sink;
}
#endif

/// Best-of-N wall time of `fn()` in seconds (minimum absorbs scheduler
/// hiccups, the same convention as bench_obs_overhead).
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

constexpr int kReps = 7;

// ---------------------------------------------------------------------------
// Workloads. All seeded and identical for both tables, so the scalar and
// vector timings measure the same work (the kernel diff test already pins
// that the *outputs* agree).
// ---------------------------------------------------------------------------

/// Overlapping sorted-unique incident runs: one dominant run plus shorter
/// ones, the shape a 4-node frontier produces (the dominant run exercises
/// the exclusive-leader bulk copy, the overlap exercises dedup ties).
struct MergeWorkload {
  std::vector<std::vector<EventIndex>> runs;
  std::uint64_t union_size = 0;
};

MergeWorkload BuildMergeWorkload(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  MergeWorkload w;
  const int universe = 120000;
  const int lens[4] = {60000, 20000, 20000, 8000};
  std::uniform_int_distribution<int> val(0, universe - 1);
  for (const int len : lens) {
    std::vector<EventIndex> run(static_cast<std::size_t>(len));
    for (EventIndex& v : run) v = static_cast<EventIndex>(val(rng));
    std::sort(run.begin(), run.end());
    run.erase(std::unique(run.begin(), run.end()), run.end());
    w.runs.push_back(std::move(run));
  }
  // Union size for the ns/op denominator (any table computes the same).
  std::vector<EventIndex> all;
  for (const auto& run : w.runs) all.insert(all.end(), run.begin(), run.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  w.union_size = all.size();
  return w;
}

std::uint64_t DrainMerge(const simd::KernelOps* ops, const MergeWorkload& w) {
  const EventIndex* runs[simd::kMaxMergeRuns];
  int lens[simd::kMaxMergeRuns];
  int curs[simd::kMaxMergeRuns];
  const int num_runs = static_cast<int>(w.runs.size());
  for (int r = 0; r < num_runs; ++r) {
    runs[r] = w.runs[static_cast<std::size_t>(r)].data();
    lens[r] = static_cast<int>(w.runs[static_cast<std::size_t>(r)].size());
    curs[r] = 0;
  }
  constexpr int kChunk = 128;
  EventIndex buf[kChunk];
  std::uint64_t checksum = 0;
  for (;;) {
    const int got =
        ops->merge_union_gather(runs, lens, curs, num_runs, buf, kChunk);
    for (int i = 0; i < got; ++i) {
      checksum += static_cast<std::uint64_t>(buf[i]);
    }
    if (got < kChunk) break;
  }
  return checksum;
}

/// Control-byte groups with ~2 tag hits and ~2 empties per 16-slot group:
/// the steady state of a 3/4-full swiss table.
struct ProbeWorkload {
  std::vector<std::uint8_t> groups;  // kGroupSize bytes each.
  std::vector<std::uint8_t> tags;    // One query tag per group.
  int num_groups = 0;
};

ProbeWorkload BuildProbeWorkload(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ProbeWorkload w;
  w.num_groups = 4096;
  w.groups.resize(static_cast<std::size_t>(w.num_groups) * simd::kGroupSize);
  w.tags.resize(static_cast<std::size_t>(w.num_groups));
  std::uniform_int_distribution<int> tag_dist(0, 0x7F);
  std::uniform_int_distribution<int> slot_dist(0, simd::kGroupSize - 1);
  for (int g = 0; g < w.num_groups; ++g) {
    std::uint8_t* group =
        w.groups.data() + static_cast<std::size_t>(g) * simd::kGroupSize;
    for (int i = 0; i < simd::kGroupSize; ++i) {
      group[i] = static_cast<std::uint8_t>(tag_dist(rng));
    }
    group[slot_dist(rng)] = simd::kEmptyCtrl;
    group[slot_dist(rng)] = simd::kEmptyCtrl;
    const std::uint8_t tag = static_cast<std::uint8_t>(tag_dist(rng));
    group[slot_dist(rng)] = tag;
    group[slot_dist(rng)] = tag;
    w.tags[static_cast<std::size_t>(g)] = tag;
  }
  return w;
}

std::uint64_t DrainProbe(const simd::KernelOps* ops, const ProbeWorkload& w,
                         int passes) {
  std::uint64_t checksum = 0;
  for (int p = 0; p < passes; ++p) {
    for (int g = 0; g < w.num_groups; ++g) {
      const std::uint8_t* group =
          w.groups.data() + static_cast<std::size_t>(g) * simd::kGroupSize;
      checksum += ops->match_tags(group, w.tags[static_cast<std::size_t>(g)]);
      checksum += ops->match_empty(group);
    }
  }
  return checksum;
}

/// Realistic 8-event packed codes over a 4-digit alphabet (heavy byte
/// repetition, like real saturated-scope traffic).
std::vector<std::uint64_t> BuildCodes(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> digit(0, 3);
  std::vector<std::uint64_t> codes(static_cast<std::size_t>(n));
  for (std::uint64_t& code : codes) {
    code = 0;
    for (int i = 0; i < internal::kMaxCoreEvents; ++i) {
      int src = digit(rng);
      int dst = digit(rng);
      if (src == 0 && dst == 0) dst = 1;
      code |= internal::PackPair(src, dst, i);
    }
  }
  return codes;
}

std::uint64_t DrainDistinct(const simd::KernelOps* ops,
                            const std::vector<std::uint64_t>& codes,
                            int passes) {
  std::uint64_t checksum = 0;
  for (int p = 0; p < passes; ++p) {
    for (const std::uint64_t code : codes) {
      checksum += static_cast<std::uint64_t>(
          ops->distinct_pair_count(code, internal::kMaxCoreEvents));
    }
  }
  return checksum;
}

std::uint64_t DrainPrefilter(const simd::KernelOps* ops,
                             const std::vector<std::uint64_t>& codes,
                             int passes) {
  // Saturated-scope batch shape: up to 72 pair codes per call.
  constexpr int kBatch = 72;
  std::uint8_t pass_mask[kBatch];
  std::uint64_t checksum = 0;
  const int n = static_cast<int>(codes.size());
  for (int p = 0; p < passes; ++p) {
    for (int base = 0; base < n; base += kBatch) {
      const int len = std::min(kBatch, n - base);
      ops->prefilter_codes(codes.data() + base, len,
                           internal::kMaxCoreEvents, /*want=*/4, pass_mask);
      for (int i = 0; i < len; ++i) checksum += pass_mask[i];
    }
  }
  return checksum;
}

struct KernelRow {
  const char* name;
  double scalar_ns = 0.0;
  double best_ns = 0.0;
  double speedup = 0.0;
};

}  // namespace

int Main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  PrintBenchHeader("Counting-kernel microbenchmarks (scalar vs dispatched)",
                   "perf appendix; runtime was out of scope for the paper",
                   args);

  const simd::KernelOps* scalar = simd::ScalarKernels();
  const simd::KernelOps* best = &simd::Kernels();
  const simd::DispatchLevel level = simd::ActiveDispatchLevel();
  std::printf("dispatched ISA: %s (level %d)\n\n",
              simd::DispatchLevelName(level), static_cast<int>(level));

  WallTimer timer;
  std::vector<KernelRow> rows;

  {
    const MergeWorkload w = BuildMergeWorkload(args.seed);
    const int passes = 40;
    auto time_table = [&](const simd::KernelOps* ops) {
      return BestSeconds(kReps, [&] {
        std::uint64_t checksum = 0;
        for (int p = 0; p < passes; ++p) checksum += DrainMerge(ops, w);
        DoNotOptimize(checksum);
      });
    };
    const double ops_done =
        static_cast<double>(w.union_size) * passes;
    KernelRow row{"merge", 0, 0, 0};
    row.scalar_ns = time_table(scalar) / ops_done * 1e9;
    row.best_ns = time_table(best) / ops_done * 1e9;
    row.speedup = row.best_ns > 0 ? row.scalar_ns / row.best_ns : 0.0;
    rows.push_back(row);
  }
  {
    const ProbeWorkload w = BuildProbeWorkload(args.seed + 1);
    const int passes = 300;
    auto time_table = [&](const simd::KernelOps* ops) {
      return BestSeconds(kReps, [&] {
        std::uint64_t checksum = DrainProbe(ops, w, passes);
        DoNotOptimize(checksum);
      });
    };
    // One match_tags + one match_empty per group per pass.
    const double ops_done =
        2.0 * static_cast<double>(w.num_groups) * passes;
    KernelRow row{"probe", 0, 0, 0};
    row.scalar_ns = time_table(scalar) / ops_done * 1e9;
    row.best_ns = time_table(best) / ops_done * 1e9;
    row.speedup = row.best_ns > 0 ? row.scalar_ns / row.best_ns : 0.0;
    rows.push_back(row);
  }
  const std::vector<std::uint64_t> codes = BuildCodes(args.seed + 2, 4096);
  {
    const int passes = 400;
    auto time_table = [&](const simd::KernelOps* ops) {
      return BestSeconds(kReps, [&] {
        std::uint64_t checksum = DrainDistinct(ops, codes, passes);
        DoNotOptimize(checksum);
      });
    };
    const double ops_done = static_cast<double>(codes.size()) * passes;
    KernelRow row{"distinct", 0, 0, 0};
    row.scalar_ns = time_table(scalar) / ops_done * 1e9;
    row.best_ns = time_table(best) / ops_done * 1e9;
    row.speedup = row.best_ns > 0 ? row.scalar_ns / row.best_ns : 0.0;
    rows.push_back(row);
  }
  {
    const int passes = 400;
    auto time_table = [&](const simd::KernelOps* ops) {
      return BestSeconds(kReps, [&] {
        std::uint64_t checksum = DrainPrefilter(ops, codes, passes);
        DoNotOptimize(checksum);
      });
    };
    const double ops_done = static_cast<double>(codes.size()) * passes;
    KernelRow row{"prefilter", 0, 0, 0};
    row.scalar_ns = time_table(scalar) / ops_done * 1e9;
    row.best_ns = time_table(best) / ops_done * 1e9;
    row.speedup = row.best_ns > 0 ? row.scalar_ns / row.best_ns : 0.0;
    rows.push_back(row);
  }

  std::printf("%-10s %14s %14s %10s\n", "kernel", "scalar ns/op",
              "best ns/op", "speedup");
  std::vector<std::pair<std::string, double>> fields = {
      {"dispatch_level", static_cast<double>(level)}};
  for (const KernelRow& row : rows) {
    std::printf("%-10s %14.3f %14.3f %9.2fx\n", row.name, row.scalar_ns,
                row.best_ns, row.speedup);
    fields.emplace_back(std::string(row.name) + "_scalar_ns", row.scalar_ns);
    fields.emplace_back(std::string(row.name) + "_best_ns", row.best_ns);
    fields.emplace_back(std::string(row.name) + "_speedup", row.speedup);
  }
  WriteBenchResult(args, "kernel_micro", timer.Seconds(), fields);
  return 0;
}

}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Main(argc, argv); }
