// Google-benchmark microbenchmarks of the counting engines. Runtime was
// explicitly out of scope for the paper ("a promising future direction");
// this suite documents the cost of each model / restriction combination so
// downstream users can budget their analyses.

#include <benchmark/benchmark.h>

#include "algorithms/parallel.h"
#include "bench_util.h"
#include "core/counter.h"
#include "core/models/model_info.h"
#include "core/models/song.h"
#include "gen/generator.h"

namespace tmotif {
namespace {

TemporalGraph MakeGraph(int num_events) {
  GeneratorConfig c;
  c.num_nodes = std::max(50, num_events / 30);
  c.num_events = num_events;
  c.median_gap_seconds = 30;
  c.prob_reply = 0.3;
  c.prob_repeat = 0.2;
  c.prob_session = 0.2;
  c.session_max_extra = 5;
  c.seed = 7;
  return GenerateTemporalNetwork(c);
}

void BM_VanillaCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(static_cast<int>(state.range(0)));
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(1500, 3000);
  std::uint64_t total = 0;
  for (auto _ : state) {
    total = CountInstances(graph, o);
    benchmark::DoNotOptimize(total);
  }
  state.counters["instances"] = static_cast<double>(total);
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_VanillaCount)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_ModelCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  const auto model = static_cast<ModelId>(state.range(0));
  const EnumerationOptions o = OptionsForModel(model, 3, 3, 1500, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
  state.SetLabel(GetModelAspects(model).name);
}
BENCHMARK(BM_ModelCount)
    ->Arg(static_cast<int>(ModelId::kKovanen))
    ->Arg(static_cast<int>(ModelId::kSong))
    ->Arg(static_cast<int>(ModelId::kHulovatyy))
    ->Arg(static_cast<int>(ModelId::kParanjape));

void BM_FourEventCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(static_cast<int>(state.range(0)));
  EnumerationOptions o;
  o.num_events = 4;
  o.max_nodes = 4;
  o.timing = TimingConstraints::Both(1000, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
}
BENCHMARK(BM_FourEventCount)->Arg(1000)->Arg(4000);

void BM_DeltaWSweep(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::OnlyDeltaW(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
}
BENCHMARK(BM_DeltaWSweep)->Arg(300)->Arg(1000)->Arg(3000)->Arg(10000);

void BM_StreamingPatternMatch(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  const EventPattern pattern = EventPattern::FromMotifCode("011202", 3000);
  for (auto _ : state) {
    EventPatternMatcher matcher(pattern);
    std::uint64_t total = 0;
    for (const Event& e : graph.events()) total += matcher.AddEvent(e);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_StreamingPatternMatch);

void BM_ParallelCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(32000);
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(1500, 3000);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstancesParallel(graph, o, threads));
  }
}
BENCHMARK(BM_ParallelCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GraphConstruction(benchmark::State& state) {
  const TemporalGraph source = MakeGraph(static_cast<int>(state.range(0)));
  const std::vector<Event> events = source.events();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphFromEvents(events));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(8000)->Arg(32000);

}  // namespace
}  // namespace tmotif

BENCHMARK_MAIN();
