// Google-benchmark microbenchmarks of the counting engines. Runtime was
// explicitly out of scope for the paper ("a promising future direction");
// this suite documents the cost of each model / restriction combination so
// downstream users can budget their analyses.
//
// Besides the --benchmark_* suite, the binary understands the shared
// --scale/--seed/--out flags (bench_util.h) and writes one
// BENCH_counting_throughput.json record — wall seconds, events/s,
// instances/s, and speedup_vs_seed of the headline configuration, plus
// per-preset predicate-path throughput (<preset>_instances_per_sec and
// <preset>_speedup_vs_pr3 for all four model presets) and the specialized
// k <= 3 fast-path throughput (fastpath_<key>_instances_per_sec and
// fastpath_<key>_speedup_vs_generic, measured against the generic DFS
// engine forced on the same workload) — so tools/bench_diff can track the
// counting-throughput trajectory across runs with the same machinery as
// every other bench.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/parallel.h"
#include "bench_util.h"
#include "core/counter.h"
#include "core/enumerate_core.h"
#include "core/models/model_info.h"
#include "core/models/song.h"
#include "gen/generator.h"
#include "obs/metrics.h"

namespace tmotif {
namespace {

// Engine attribution via the obs dispatch counters
// (counting.dispatch_fastpath / counting.dispatch_generic): the dispatcher
// itself, not a bench-side re-derivation of its predicate, says which
// counting engine served a timed run. Under TMOTIF_NO_TELEMETRY both
// counters read 0 and the label degrades to "untracked".
struct DispatchDelta {
  std::uint64_t fastpath = 0;
  std::uint64_t generic = 0;
  const char* Engine() const {
    if (fastpath == 0 && generic == 0) return "untracked";
    if (generic == 0) return "fastpath";
    if (fastpath == 0) return "generic";
    return "mixed";
  }
};

class DispatchSampler {
 public:
  DispatchSampler()
      : fastpath_(
            obs::GlobalMetrics().GetCounter("counting.dispatch_fastpath")),
        generic_(
            obs::GlobalMetrics().GetCounter("counting.dispatch_generic")),
        fastpath_start_(fastpath_->Value()),
        generic_start_(generic_->Value()) {}

  DispatchDelta Delta() const {
    return {fastpath_->Value() - fastpath_start_,
            generic_->Value() - generic_start_};
  }

 private:
  obs::Counter* fastpath_;
  obs::Counter* generic_;
  std::uint64_t fastpath_start_;
  std::uint64_t generic_start_;
};

TemporalGraph MakeGraph(int num_events) {
  GeneratorConfig c;
  c.num_nodes = std::max(50, num_events / 30);
  c.num_events = num_events;
  c.median_gap_seconds = 30;
  c.prob_reply = 0.3;
  c.prob_repeat = 0.2;
  c.prob_session = 0.2;
  c.session_max_extra = 5;
  c.seed = 7;
  return GenerateTemporalNetwork(c);
}

void BM_VanillaCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(static_cast<int>(state.range(0)));
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(1500, 3000);
  std::uint64_t total = 0;
  for (auto _ : state) {
    total = CountInstances(graph, o);
    benchmark::DoNotOptimize(total);
  }
  state.counters["instances"] = static_cast<double>(total);
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_VanillaCount)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_ModelCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  const auto model = static_cast<ModelId>(state.range(0));
  const EnumerationOptions o = OptionsForModel(model, 3, 3, 1500, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
  state.SetLabel(GetModelAspects(model).name);
}
BENCHMARK(BM_ModelCount)
    ->Arg(static_cast<int>(ModelId::kKovanen))
    ->Arg(static_cast<int>(ModelId::kSong))
    ->Arg(static_cast<int>(ModelId::kHulovatyy))
    ->Arg(static_cast<int>(ModelId::kParanjape));

void BM_FourEventCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(static_cast<int>(state.range(0)));
  EnumerationOptions o;
  o.num_events = 4;
  o.max_nodes = 4;
  o.timing = TimingConstraints::Both(1000, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
}
BENCHMARK(BM_FourEventCount)->Arg(1000)->Arg(4000);

void BM_DeltaWSweep(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::OnlyDeltaW(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstances(graph, o));
  }
}
BENCHMARK(BM_DeltaWSweep)->Arg(300)->Arg(1000)->Arg(3000)->Arg(10000);

void BM_StreamingPatternMatch(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(8000);
  const EventPattern pattern = EventPattern::FromMotifCode("011202", 3000);
  for (auto _ : state) {
    EventPatternMatcher matcher(pattern);
    std::uint64_t total = 0;
    for (const Event& e : graph.events()) total += matcher.AddEvent(e);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_StreamingPatternMatch);

void BM_ParallelCount(benchmark::State& state) {
  const TemporalGraph graph = MakeGraph(32000);
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(1500, 3000);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInstancesParallel(graph, o, threads));
  }
}
BENCHMARK(BM_ParallelCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GraphConstruction(benchmark::State& state) {
  const TemporalGraph source = MakeGraph(static_cast<int>(state.range(0)));
  const std::vector<Event> events = source.events();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphFromEvents(events));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(8000)->Arg(32000);

// Headline configuration of the recorded throughput trajectory: vanilla
// three-event counting with dC = 1500 / dW = 3000 on the 8000-event
// generated graph, matching BM_VanillaCount/8000.
constexpr int kHeadlineEvents = 8000;

// Seed-baseline instance throughput of the headline configuration, measured
// at the pre-optimization tree (PR 2 head, Release, the CI reference
// machine): 285,443 instances in 36.72 ms. speedup_vs_seed is this run's
// instances/s divided by the frozen baseline, so bench_diff records show
// the cumulative effect of the hot-path work; refresh the constant if the
// reference hardware changes.
constexpr double kSeedInstancesPerSec = 7.77e6;

// Per-preset baselines frozen at the PR 3 tree (flattened DFS core, global
// sorted-edge-key binary search) on the same reference machine, so the
// record tracks what the O(1) predicate path (per-node neighbor CSR +
// DfsEngine slot memo) buys on the predicate-dominated presets. Same
// workload as BM_ModelCount: the 8000-event generated graph, k = 3,
// max_nodes = 3, dC = 1500, dW = 3000.
struct PresetBaseline {
  ModelId model;
  const char* key;
  /// Instances/s at the PR 3 tree (instances / measured best CPU seconds).
  double pr3_instances_per_sec;
};
constexpr PresetBaseline kPresetBaselines[] = {
    // 5,371 instances / 6.78 ms; 543,668 / 32.9 ms; 26,808 / 29.5 ms;
    // 41,152 / 55.9 ms (PR 3 tree, Release, median CPU time of interleaved
    // A/B runs).
    {ModelId::kKovanen, "kovanen", 7.92e5},
    {ModelId::kSong, "song", 1.65e7},
    {ModelId::kHulovatyy, "hulovatyy", 9.09e5},
    {ModelId::kParanjape, "paranjape", 7.36e5},
};

void WriteThroughputRecord(const BenchArgs& args) {
  // The headline workload is fixed (8000-event graph, internal seed 7) so
  // records stay comparable run-to-run; stamp the record with the actual
  // workload parameters instead of whatever --scale/--seed the caller
  // passed for the other benches.
  BenchArgs record_args = args;
  record_args.scale_multiplier = 1.0;
  record_args.seed = 7;
  const TemporalGraph graph = MakeGraph(kHeadlineEvents);
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(1500, 3000);

  // Best-of-N wall time (N sized so the record costs well under a second).
  double best_seconds = 0.0;
  std::uint64_t instances = 0;
  DispatchSampler headline_sampler;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    instances = CountInstances(graph, o);
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  const double instances_per_sec =
      best_seconds > 0 ? static_cast<double>(instances) / best_seconds : 0.0;
  const double events_per_sec =
      best_seconds > 0 ? static_cast<double>(kHeadlineEvents) / best_seconds
                       : 0.0;
  std::printf(
      "\ncounting throughput record: %.4fs, %.0f instances/s, "
      "%.2fx vs seed baseline, engine=%s\n",
      best_seconds, instances_per_sec,
      instances_per_sec / kSeedInstancesPerSec,
      headline_sampler.Delta().Engine());

  // Per-preset predicate-path throughput: the model presets differ mainly
  // in how much per-instance graph querying (HasStaticEdge,
  // CountEdgeEventsInTimeRange, incident scans) their predicates do, so
  // these fields track the predicate path specifically.
  std::vector<std::pair<std::string, double>> fields = {
      {"instances", static_cast<double>(instances)},
      {"instances_per_sec", instances_per_sec},
      {"events_per_sec", events_per_sec},
      {"speedup_vs_seed", instances_per_sec / kSeedInstancesPerSec}};
  for (const PresetBaseline& preset : kPresetBaselines) {
    const EnumerationOptions po =
        OptionsForModel(preset.model, 3, 3, 1500, 3000);
    double preset_best = 0.0;
    std::uint64_t preset_instances = 0;
    DispatchSampler preset_sampler;
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer timer;
      preset_instances = CountInstances(graph, po);
      const double seconds = timer.Seconds();
      if (rep == 0 || seconds < preset_best) preset_best = seconds;
    }
    const double ips =
        preset_best > 0 ? static_cast<double>(preset_instances) / preset_best
                        : 0.0;
    std::printf("%s preset: %.4fs, %.0f instances/s, %.2fx vs PR3, "
                "engine=%s\n",
                preset.key, preset_best, ips,
                ips / preset.pr3_instances_per_sec,
                preset_sampler.Delta().Engine());
    fields.emplace_back(std::string(preset.key) + "_instances_per_sec", ips);
    fields.emplace_back(std::string(preset.key) + "_speedup_vs_pr3",
                        ips / preset.pr3_instances_per_sec);
  }

  // Specialized k <= 3 fast-path throughput on dispatched configurations
  // (dW-only, no order predicates): the Song preset workload (k = 3,
  // max_nodes = 3 — wedges/stars/triangles counters) and vanilla 2-node
  // three-event counting (the Paranjape event-sequence DP family). Each is
  // measured twice on the same graph: through the dispatcher (the fast
  // paths) and with the generic DFS engine forced, so speedup_vs_generic is
  // an apples-to-apples same-run ratio rather than a frozen baseline.
  struct FastPathWorkload {
    const char* key;
    EnumerationOptions options;
  };
  std::vector<FastPathWorkload> fast_workloads;
  {
    EnumerationOptions song;
    song.num_events = 3;
    song.max_nodes = 3;
    song.timing = TimingConstraints::OnlyDeltaW(3000);
    fast_workloads.push_back({"song", song});
    EnumerationOptions vanilla_2node;
    vanilla_2node.num_events = 3;
    vanilla_2node.max_nodes = 2;
    vanilla_2node.timing = TimingConstraints::OnlyDeltaW(3000);
    fast_workloads.push_back({"vanilla_2node", vanilla_2node});
  }
  for (const FastPathWorkload& w : fast_workloads) {
    double fast_best = 0.0;
    std::uint64_t fast_instances = 0;
    DispatchSampler fast_sampler;
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer timer;
      fast_instances = CountInstances(graph, w.options);
      const double seconds = timer.Seconds();
      if (rep == 0 || seconds < fast_best) fast_best = seconds;
    }
    // The dispatch counters, not a bench-side FastPathSupported call, are
    // the authority on what served the runs: every timed rep must have
    // dispatched to a fast path. (Both deltas read 0 only under
    // TMOTIF_NO_TELEMETRY, where attribution is unavailable.)
    const DispatchDelta fast_delta = fast_sampler.Delta();
    TMOTIF_CHECK(fast_delta.generic == 0);
    TMOTIF_CHECK(fast_delta.fastpath == 5 || fast_delta.fastpath == 0);
    double generic_best = 0.0;
    std::uint64_t generic_instances = 0;
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer timer;
      internal::CountOnlySink sink;
      generic_instances = internal::EnumerateCore(graph, w.options, 0,
                                                  graph.num_events(), sink);
      const double seconds = timer.Seconds();
      if (rep == 0 || seconds < generic_best) generic_best = seconds;
    }
    TMOTIF_CHECK(fast_instances == generic_instances);
    const double fast_ips =
        fast_best > 0 ? static_cast<double>(fast_instances) / fast_best : 0.0;
    const double generic_ips =
        generic_best > 0
            ? static_cast<double>(generic_instances) / generic_best
            : 0.0;
    const double speedup = generic_ips > 0 ? fast_ips / generic_ips : 0.0;
    std::printf("fastpath %s: %.4fs vs generic %.4fs, %.0f instances/s, "
                "%.2fx vs generic, engine=%s\n",
                w.key, fast_best, generic_best, fast_ips, speedup,
                fast_delta.Engine());
    fields.emplace_back(
        std::string("fastpath_") + w.key + "_instances_per_sec", fast_ips);
    fields.emplace_back(
        std::string("fastpath_") + w.key + "_speedup_vs_generic", speedup);
  }

  // Scope-saturated temporal-window final path: same workload measured
  // with the edge-run lift disabled (the generic final merge + per-emit
  // pair scan) and enabled, an apples-to-apples same-run ratio. k = 4 at
  // max_nodes = 3 saturates the scope on most final depths, the shape the
  // lift targets.
  {
    EnumerationOptions wo;
    wo.num_events = 4;
    wo.max_nodes = 3;
    wo.timing = TimingConstraints::OnlyDeltaW(3000);
    wo.inducedness = Inducedness::kTemporalWindow;
    auto measure = [&](bool lifted, std::uint64_t* instances) {
      internal::SetSaturatedWindowRunsForTesting(lifted);
      double best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        WallTimer timer;
        *instances = CountInstances(graph, wo);
        const double seconds = timer.Seconds();
        if (rep == 0 || seconds < best) best = seconds;
      }
      return best;
    };
    std::uint64_t generic_instances = 0;
    std::uint64_t lifted_instances = 0;
    const double generic_best = measure(false, &generic_instances);
    const double lifted_best = measure(true, &lifted_instances);
    internal::SetSaturatedWindowRunsForTesting(true);
    TMOTIF_CHECK(lifted_instances == generic_instances);
    const double lifted_ips =
        lifted_best > 0 ? static_cast<double>(lifted_instances) / lifted_best
                        : 0.0;
    const double generic_ips =
        generic_best > 0
            ? static_cast<double>(generic_instances) / generic_best
            : 0.0;
    const double speedup = generic_ips > 0 ? lifted_ips / generic_ips : 0.0;
    std::printf("window-induced saturated: %.4fs vs generic %.4fs, "
                "%.0f instances/s, %.2fx vs generic final loop\n",
                lifted_best, generic_best, lifted_ips, speedup);
    fields.emplace_back("window_induced_instances_per_sec", lifted_ips);
    fields.emplace_back("window_induced_speedup_vs_generic", speedup);
  }
  WriteBenchResult(record_args, "counting_throughput", best_seconds, fields);
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) {
  // Split argv: the shared bench flags (--scale/--seed/--out) go to
  // ParseBenchArgs, everything else to Google Benchmark (which rejects
  // flags it does not know).
  std::vector<char*> own_argv{argv[0]};
  std::vector<char*> gbench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const bool ours = std::strncmp(argv[i], "--scale=", 8) == 0 ||
                      std::strncmp(argv[i], "--seed=", 7) == 0 ||
                      std::strncmp(argv[i], "--out=", 6) == 0;
    (ours ? own_argv : gbench_argv).push_back(argv[i]);
  }
  const tmotif::BenchArgs args = tmotif::ParseBenchArgs(
      static_cast<int>(own_argv.size()), own_argv.data());

  int gbench_argc = static_cast<int>(gbench_argv.size());
  benchmark::Initialize(&gbench_argc, gbench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  tmotif::WriteThroughputRecord(args);
  return 0;
}
