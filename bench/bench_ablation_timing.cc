// Ablation for Section 4.5: the dC/dW trade-off formula. Sweeps the dC/dW
// ratio across the three regimes and shows empirically that
//   * below 1/(m-1), adding dW on top of dC changes nothing (only-dC);
//   * above 1, adding dC on top of dW changes nothing (only-dW);
//   * in between, both constraints bind (counts strictly between).

#include <cstdio>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"
#include "core/counter.h"
#include "core/timing.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaW = 3000;

std::uint64_t CountWith(const TemporalGraph& graph, int k,
                        const TimingConstraints& timing) {
  EnumerationOptions o;
  o.num_events = k;
  o.max_nodes = k;
  o.timing = timing;
  return CountInstances(graph, o);
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Timing-constraint trade-off",
      "Section 4.5's case analysis, verified empirically on CollegeMsg",
      args);

  BenchArgs scaled = args;
  scaled.scale_multiplier *= 0.5;
  const TemporalGraph graph =
      LoadBenchDataset(DatasetId::kCollegeMsg, scaled);

  CsvWriter csv(BenchOutputPath(args.out_dir, "ablation_timing.csv"));
  csv.WriteRow({"num_events", "ratio", "regime", "count_both",
                "count_only_dc", "count_only_dw"});

  for (const int k : {3, 4}) {
    std::printf("--- %d-event motifs, dW=%llds ---\n", k,
                static_cast<long long>(kDeltaW));
    TextTable table({"dC/dW", "Regime (formula)", "count(dC,dW)",
                     "count(only dC)", "count(only dW)", "Binding"});
    for (const double ratio :
         {0.2, 1.0 / (k - 1), 0.5, 0.66, 0.9, 1.0, 1.5}) {
      const Timestamp dc = static_cast<Timestamp>(ratio * kDeltaW);
      const TimingConstraints both_t = TimingConstraints::Both(dc, kDeltaW);
      const TimingRegime regime = ClassifyTiming(both_t, k);

      const std::uint64_t with_both = CountWith(graph, k, both_t);
      const std::uint64_t only_dc =
          CountWith(graph, k, TimingConstraints::OnlyDeltaC(dc));
      const std::uint64_t only_dw =
          CountWith(graph, k, TimingConstraints::OnlyDeltaW(kDeltaW));

      const char* binding = "both bind";
      if (with_both == only_dc) binding = "== only-dC";
      if (with_both == only_dw) binding = "== only-dW";

      table.AddRow()
          .AddDouble(ratio, 2)
          .AddCell(TimingRegimeName(regime))
          .AddUint(with_both)
          .AddUint(only_dc)
          .AddUint(only_dw)
          .AddCell(binding);
      csv.WriteRow({std::to_string(k), std::to_string(ratio),
                    TimingRegimeName(regime), std::to_string(with_both),
                    std::to_string(only_dc), std::to_string(only_dw)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Expected: rows classified only-dC match the only-dC count exactly, "
      "rows classified only-dW match the only-dW count, and dW-and-dC rows "
      "sit strictly between.\n");
  WriteBenchResult(args, "ablation_timing", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
