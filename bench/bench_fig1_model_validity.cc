// Reproduces Figure 1: one temporal network, four candidate motifs, and
// their validity under the four temporal motif models (dC=5s, dW=10s).
// The candidates exercise the figure's four rows:
//   1. breaks dC only            -> invalid in Kovanen & Hulovatyy
//   2. breaks dC + not induced   -> valid only in Song
//   3. breaks the consecutive-   -> invalid in Kovanen only
//      events restriction
//   4. valid in all four models

#include <cstdio>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"
#include "core/models/model_info.h"

namespace tmotif {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader("Model validity comparison",
                   "Figure 1 (four motifs x four models, dC=5s, dW=10s)",
                   args);

  // Four triangle candidates in disjoint node clusters (time-sorted):
  //   cluster A: e0 (0,1)@0   e1 (1,2)@7   e2 (2,0)@9     [7s gap]
  //   cluster B: e3 (3,4)@20  e4 (4,5)@27  e5 (3,5)@29    [7s gap]
  //              + e13 (5,3)@200: a diagonal that breaks inducedness
  //   cluster C: e6 (6,7)@40  e8 (7,8)@44  e9 (8,6)@48
  //              + e7 (9,7)@42: intrudes on node 7 mid-motif
  //   cluster D: e10 (10,11)@60 e11 (11,12)@64 e12 (12,10)@68
  const TemporalGraph graph = GraphFromEvents(
      {{0, 1, 0},    {1, 2, 7},    {2, 0, 9},    {3, 4, 20},
       {4, 5, 27},   {3, 5, 29},   {6, 7, 40},   {9, 7, 42},
       {7, 8, 44},   {8, 6, 48},   {10, 11, 60}, {11, 12, 64},
       {12, 10, 68}, {5, 3, 200}});
  const Timestamp delta_c = 5;
  const Timestamp delta_w = 10;

  struct Candidate {
    const char* description;
    std::vector<EventIndex> events;
  };
  const std::vector<Candidate> candidates = {
      {"triangle A: 7s gap breaks dC", {0, 1, 2}},
      {"triangle B: breaks dC, diagonal (5,3) breaks inducedness",
       {3, 4, 5}},
      {"triangle C: (9,7)@42 intrudes on node 7 (non-consecutive)",
       {6, 8, 9}},
      {"triangle D: valid under every model", {10, 11, 12}},
  };

  TextTable table({"Candidate motif", "Kovanen", "Song", "Hulovatyy",
                   "Paranjape"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "fig1_model_validity.csv"));
  csv.WriteRow({"candidate", "kovanen", "song", "hulovatyy", "paranjape"});

  for (const Candidate& candidate : candidates) {
    table.AddRow().AddCell(candidate.description);
    std::vector<std::string> row = {candidate.description};
    for (const ModelId model : kAllModels) {
      const bool ok = IsValidUnderModel(graph, candidate.events, model,
                                        delta_c, delta_w);
      table.AddCell(ok ? "valid" : "-");
      row.push_back(ok ? "valid" : "invalid");
    }
    csv.WriteRow(row);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Model aspects (Table 1):\n");
  TextTable aspects({"Model", "Induced", "Durations", "Partial order",
                     "Directed", "Labels", "dC", "dW"});
  for (const ModelId model : kAllModels) {
    const ModelAspects a = GetModelAspects(model);
    aspects.AddRow()
        .AddCell(a.name)
        .AddCell(a.induced_subgraph)
        .AddCell(a.event_durations ? "yes" : "no")
        .AddCell(a.partial_ordering ? "yes" : "no")
        .AddCell(a.directed_edges ? "yes" : "no")
        .AddCell(a.node_edge_labels ? "yes" : "no")
        .AddCell(a.uses_delta_c ? "yes" : "no")
        .AddCell(a.uses_delta_w ? "yes" : "no");
  }
  std::printf("%s\n", aspects.Render().c_str());
  WriteBenchResult(args, "fig1_model_validity", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
