#ifndef TMOTIF_BENCH_BENCH_UTIL_H_
#define TMOTIF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gen/presets.h"
#include "graph/temporal_graph.h"

namespace tmotif {

/// Command-line arguments shared by every bench binary. All benches run
/// with defaults (no flags needed) and print paper-style rows to stdout.
///   --scale=X   multiply every dataset's default bench scale by X
///   --seed=N    generator seed
///   --out=DIR   CSV output directory (default "bench_out")
struct BenchArgs {
  double scale_multiplier = 1.0;
  std::uint64_t seed = 42;
  std::string out_dir = "bench_out";
};

/// Parses flags; unknown flags abort with a usage message.
BenchArgs ParseBenchArgs(int argc, char** argv);

/// Generates a dataset at its default bench scale times the multiplier.
TemporalGraph LoadBenchDataset(DatasetId id, const BenchArgs& args);

/// Effective scale used by `LoadBenchDataset`.
double EffectiveScale(DatasetId id, const BenchArgs& args);

/// Prints a standard header naming the paper artefact being reproduced.
void PrintBenchHeader(const std::string& title, const std::string& paper_ref,
                      const BenchArgs& args);

/// The message-network subset the paper highlights repeatedly.
std::vector<DatasetId> MessageDatasets();

/// Writes `<out_dir>/BENCH_<name>.json`: one machine-readable record of this
/// run — bench name, effective scale multiplier, seed, and wall seconds — so
/// the perf trajectory of every bench can be tracked across PRs (e.g. by
/// tools/run_benches.sh and tools/bench_diff). Overwrites any previous
/// record. `extra` appends additional numeric fields (e.g. a speedup ratio
/// or an events/sec throughput) to the same record.
void WriteBenchResult(const BenchArgs& args, const std::string& name,
                      double seconds);
void WriteBenchResult(
    const BenchArgs& args, const std::string& name, double seconds,
    const std::vector<std::pair<std::string, double>>& extra);

/// Wall-clock helper for reporting bench runtimes.
class WallTimer {
 public:
  WallTimer();
  /// Seconds since construction.
  double Seconds() const;

 private:
  std::int64_t start_ns_;
};

}  // namespace tmotif

#endif  // TMOTIF_BENCH_BENCH_UTIL_H_
