// Ablation for the "Algorithmic improvements" related work (Liu et al.
// [38]): interval-sampling approximate counting vs exact enumeration.
// Reports estimation error and speedup as the window budget shrinks.

#include <cmath>
#include <cstdio>

#include "algorithms/sampling.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Sampling estimator",
      "Section 3 'Algorithmic improvements': approximate counting via "
      "random time windows (Liu-Benson-Charikar style)",
      args);

  EnumerationOptions options;
  options.num_events = 3;
  options.max_nodes = 3;
  options.timing = TimingConstraints::OnlyDeltaW(3000);

  TextTable table({"Network", "Windows", "Exact", "Estimate", "Rel. error",
                   "Work fraction", "Speedup"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "ablation_sampling.csv"));
  csv.WriteRow({"dataset", "num_windows", "exact", "estimate", "rel_error",
                "exact_seconds", "sampled_seconds"});

  for (const DatasetId id :
       {DatasetId::kCollegeMsg, DatasetId::kSmsCopenhagen,
        DatasetId::kFbWall}) {
    const TemporalGraph graph = LoadBenchDataset(id, args);

    WallTimer exact_timer;
    const std::uint64_t exact = CountInstances(graph, options);
    const double exact_seconds = exact_timer.Seconds();

    for (const int windows : {16, 64, 256}) {
      Rng rng(args.seed);
      SamplingConfig sampling;
      sampling.window_length = 6000;
      sampling.num_windows = windows;

      WallTimer sample_timer;
      const SampledCounts estimate =
          EstimateMotifCounts(graph, options, sampling, &rng);
      const double sample_seconds = sample_timer.Seconds();

      const double rel_error =
          exact == 0 ? 0.0
                     : std::abs(estimate.estimated_total -
                                static_cast<double>(exact)) /
                           static_cast<double>(exact);
      const double work =
          exact == 0 ? 0.0
                     : static_cast<double>(estimate.instances_seen) /
                           static_cast<double>(exact);
      table.AddRow()
          .AddCell(DatasetName(id))
          .AddInt(windows)
          .AddHumanCount(exact)
          .AddDouble(estimate.estimated_total, 0)
          .AddPercent(rel_error)
          .AddPercent(work)
          .AddDouble(sample_seconds > 0 ? exact_seconds / sample_seconds
                                        : 0.0,
                     1);
      csv.WriteRow({DatasetName(id), std::to_string(windows),
                    std::to_string(exact),
                    std::to_string(estimate.estimated_total),
                    std::to_string(rel_error),
                    std::to_string(exact_seconds),
                    std::to_string(sample_seconds)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Expected: error shrinks roughly as 1/sqrt(windows); small window "
      "budgets trade accuracy for an order-of-magnitude less enumeration "
      "work (the paper's reference reports up to two orders of magnitude).\n");
  WriteBenchResult(args, "ablation_sampling", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
