// Reproduces Figure 5 (+ appendix Figure 10): distributions of motif
// timespans under only-dC, dW-and-dC, and only-dW configurations. only-dC
// fails to bound timespans (mass spreads to the loose dC*(k-1) bound);
// only-dW regularizes the distribution.

#include <cstdio>

#include "analysis/report.h"
#include "analysis/timespan_analysis.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaW = 3000;
constexpr Timestamp kDeltaC = 1500;

EnumerationOptions ConfigFor(const char* name) {
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  const std::string config(name);
  if (config == "only-dC") {
    o.timing = TimingConstraints::OnlyDeltaC(kDeltaC);
  } else if (config == "dW-and-dC") {
    o.timing = TimingConstraints::Both(2000, kDeltaW);
  } else {
    o.timing = TimingConstraints::OnlyDeltaW(kDeltaW);
  }
  return o;
}

struct Panel {
  DatasetId dataset;
  const char* motif;
};

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Motif timespan distributions",
      "Figure 5 (010102 on CollegeMsg) and Figure 10 panels (FBWall, "
      "SMS-Copen., SuperUser, Calls-Copen., Bitcoin-otc)",
      args);

  const Panel panels[] = {
      {DatasetId::kCollegeMsg, "010102"},
      {DatasetId::kFbWall, "010102"},
      {DatasetId::kSmsCopenhagen, "010102"},
      {DatasetId::kSuperUser, "010102"},
      {DatasetId::kCallsCopenhagen, "010102"},
      {DatasetId::kBitcoinOtc, "011012"},
  };
  const char* configs[] = {"only-dC", "dW-and-dC", "only-dW"};

  CsvWriter csv(BenchOutputPath(args.out_dir, "fig5_timespans.csv"));
  csv.WriteRow({"dataset", "motif", "config", "span_bin_lo", "count"});

  for (const Panel& panel : panels) {
    const TemporalGraph graph = LoadBenchDataset(panel.dataset, args);
    std::printf("--- %s motif %s ---\n", DatasetName(panel.dataset),
                panel.motif);
    TextTable table({"Config", "Instances", "Mean span (s)",
                     "Mass in last third"});
    for (const char* config : configs) {
      const TimespanProfile profile =
          CollectTimespans(graph, ConfigFor(config), panel.motif, 30);
      // Fraction of instances whose span lies in the top third of the
      // histogram range: only-dW admits long spans, only-dC does not bound
      // them but rarely reaches the loose bound's tail in one histogram.
      std::uint64_t tail = 0;
      for (int b = 20; b < profile.histogram.num_bins(); ++b) {
        tail += profile.histogram.bin_count(b);
      }
      const double tail_frac =
          profile.num_instances == 0
              ? 0.0
              : static_cast<double>(tail) /
                    static_cast<double>(profile.num_instances);
      table.AddRow()
          .AddCell(config)
          .AddUint(profile.num_instances)
          .AddDouble(profile.mean_span, 0)
          .AddPercent(tail_frac);
      for (int b = 0; b < profile.histogram.num_bins(); ++b) {
        csv.WriteRow({DatasetName(panel.dataset), panel.motif, config,
                      std::to_string(profile.histogram.bin_lo(b)),
                      std::to_string(profile.histogram.bin_count(b))});
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Paper shape: only-dC spans spread towards the loose bound "
      "dC*(k-1)=3000s; adding dW regularizes the distribution and caps the "
      "span at dW.\n");
  WriteBenchResult(args, "fig5_timespans", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
