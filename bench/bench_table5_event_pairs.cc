// Reproduces Table 5: counts of event pairs (R/P/I/O vs C/W groups) in
// 3n3e motifs under only-dW, dW-and-dC, and only-dC configurations, with
// the reduction ratios relative to only-dW.

#include <cstdio>

#include "analysis/event_pair_analysis.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaW = 3000;

EnumerationOptions ConfigFor(double ratio) {
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  if (ratio >= 1.0) {
    o.timing = TimingConstraints::OnlyDeltaW(kDeltaW);
  } else {
    o.timing = TimingConstraints::Both(
        static_cast<Timestamp>(ratio * kDeltaW), kDeltaW);
  }
  return o;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Event pairs vs timing constraints",
      "Table 5: R/P/I/O and C/W counts under only-dW (dC/dW=1.0), "
      "dW-and-dC (0.66) and only-dC (0.5); dW=3000s",
      args);

  TextTable table({"Network", "Group", "only-dW", "dW-and-dC", "ratio",
                   "only-dC", "ratio"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "table5_event_pairs.csv"));
  csv.WriteRow({"dataset", "group", "only_dw", "both", "both_ratio",
                "only_dc", "only_dc_ratio"});

  const std::vector<DatasetId> datasets = {
      DatasetId::kCollegeMsg, DatasetId::kFbWall, DatasetId::kBitcoinOtc,
      DatasetId::kSmsCopenhagen, DatasetId::kSmsA};

  for (const DatasetId id : datasets) {
    const TemporalGraph graph = LoadBenchDataset(id, args);
    const EventPairStats only_dw =
        CollectEventPairStats(graph, ConfigFor(1.0));
    const EventPairStats both = CollectEventPairStats(graph, ConfigFor(0.66));
    const EventPairStats only_dc =
        CollectEventPairStats(graph, ConfigFor(0.5));

    struct GroupRow {
      const char* name;
      std::uint64_t dw, both, dc;
    };
    const GroupRow rows[2] = {
        {"R,P,I,O", only_dw.rpio(), both.rpio(), only_dc.rpio()},
        {"C,W", only_dw.cw(), both.cw(), only_dc.cw()},
    };
    for (const GroupRow& row : rows) {
      const double both_ratio =
          row.dw == 0 ? 0.0
                      : static_cast<double>(row.both) /
                            static_cast<double>(row.dw);
      const double dc_ratio =
          row.dw == 0 ? 0.0
                      : static_cast<double>(row.dc) /
                            static_cast<double>(row.dw);
      table.AddRow()
          .AddCell(DatasetName(id))
          .AddCell(row.name)
          .AddHumanCount(row.dw)
          .AddHumanCount(row.both)
          .AddPercent(both_ratio)
          .AddHumanCount(row.dc)
          .AddPercent(dc_ratio);
      csv.WriteRow({DatasetName(id), row.name, std::to_string(row.dw),
                    std::to_string(row.both), std::to_string(both_ratio),
                    std::to_string(row.dc), std::to_string(dc_ratio)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper shape: R/P/I/O counts dwarf C/W; tightening towards only-dC "
      "removes proportionally more R/P/I/O pairs than C/W pairs (e.g. "
      "CollegeMsg 56.8%% vs 58.9%% kept under only-dC).\n");
  WriteBenchResult(args, "table5_event_pairs", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
