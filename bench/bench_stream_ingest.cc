// Streaming ingestion throughput: incremental sliding-window maintenance
// (stream/streaming_counter.h) versus the naive alternative of recounting
// the whole window from scratch after every batch. The acceptance bar for
// the streaming subsystem is a >= 5x speedup on the small preset dataset;
// the recorded BENCH_stream_ingest.json carries both times and the ratio so
// tools/bench_diff can track the trajectory.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/models/model_info.h"
#include "stream/streaming_counter.h"

namespace tmotif {
namespace {

constexpr std::size_t kBatchSize = 64;
constexpr std::int64_t kWindowEvents = 2048;
constexpr Timestamp kDeltaC = 900;
constexpr Timestamp kDeltaW = 1800;

// Seed-baseline ingest throughput of the headline (Song) configuration at
// scale 0.05 / seed 42, measured at the pre-optimization tree (PR 2 head,
// Release, the CI reference machine): 2990 events in 23.5 ms, when the
// window graph was still rebuilt O(W) per batch. speedup_vs_seed in the
// BENCH record is this run's events/s over the frozen baseline; refresh
// the constant if the reference hardware changes.
constexpr double kSeedEventsPerSec = 127259.0;

struct StreamBenchResult {
  double incremental_seconds = 0.0;
  double naive_seconds = 0.0;
  std::uint64_t final_total = 0;
  std::uint64_t naive_final_total = 0;
  IngestStats stats;
};

StreamBenchResult RunOne(const TemporalGraph& graph, const ModelId model,
                         std::size_t batch_size = kBatchSize,
                         StaticFlipStrategy strategy =
                             StaticFlipStrategy::kInstanceStore) {
  StreamConfig config;
  config.options = OptionsForModel(model, /*num_events=*/3, /*max_nodes=*/3,
                                   kDeltaC, kDeltaW);
  config.window = WindowPolicy::CountBased(kWindowEvents);
  config.static_flips = strategy;
  const std::vector<Event>& events = graph.events();

  StreamBenchResult result;
  {
    StreamingMotifCounter counter(config);
    WallTimer timer;
    for (std::size_t begin = 0; begin < events.size(); begin += batch_size) {
      const std::size_t end = std::min(events.size(), begin + batch_size);
      counter.Ingest(std::vector<Event>(
          events.begin() + static_cast<std::ptrdiff_t>(begin),
          events.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    result.incremental_seconds = timer.Seconds();
    result.final_total = counter.total();
    result.stats = counter.stats();
  }
  {
    // Naive baseline: identical window semantics, but every batch rebuilds
    // the window graph and recounts it from scratch.
    StreamWindow window(config.window);
    MotifCounts counts;
    WallTimer timer;
    for (std::size_t begin = 0; begin < events.size(); begin += batch_size) {
      const std::size_t end = std::min(events.size(), begin + batch_size);
      const std::vector<Event> batch(
          events.begin() + static_cast<std::ptrdiff_t>(begin),
          events.begin() + static_cast<std::ptrdiff_t>(end));
      window.Apply(window.PlanIngest(batch), batch);
      TemporalGraphBuilder builder;
      for (const Event& e : window.events()) builder.AddEvent(e);
      counts = CountMotifs(builder.Build(), config.options);
    }
    result.naive_seconds = timer.Seconds();
    result.naive_final_total = counts.total();
  }
  return result;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  PrintBenchHeader(
      "Streaming ingestion vs naive recount",
      "sliding-window maintenance (stream/), 3n3e presets, window " +
          std::to_string(kWindowEvents) + " events, batch " +
          std::to_string(kBatchSize),
      args);

  const DatasetId dataset = DatasetId::kCollegeMsg;
  const TemporalGraph graph = LoadBenchDataset(dataset, args);
  std::printf("%s: %d events\n\n", DatasetName(dataset), graph.num_events());

  TextTable table({"Model", "Incremental", "Naive recount", "Speedup",
                   "Events/s", "Final window motifs"});
  double recorded_incremental = 0.0;
  double recorded_naive = 0.0;
  double recorded_events_per_sec = 0.0;
  // Song (dW only) is the headline configuration: it has no non-local
  // predicate, so it shows the pure delta path. Kovanen adds the
  // consecutive-events restriction and its boundary corrections. Paranjape
  // and Hulovatyy add static inducedness: their static-edge flips are
  // absorbed by the node-pair live-instance store, fully incremental at
  // this (large) batch size — the scoped-recount verification strategy runs
  // as an extra Paranjape row for comparison, since large batches flip wide
  // swaths of the edge set and push it onto its full-recount fallback.
  double paranjape_events_per_sec = 0.0;
  double paranjape_store_flips = 0.0;
  double paranjape_store_touched = 0.0;
  double paranjape_fallbacks = 0.0;
  double paranjape_scoped_events_per_sec = 0.0;
  double hulovatyy_events_per_sec = 0.0;
  struct Row {
    ModelId model;
    const char* label;
    StaticFlipStrategy strategy;
  };
  const Row rows[] = {
      {ModelId::kSong, "Song et al.", StaticFlipStrategy::kInstanceStore},
      {ModelId::kKovanen, "Kovanen et al.",
       StaticFlipStrategy::kInstanceStore},
      {ModelId::kHulovatyy, "Hulovatyy et al. (store)",
       StaticFlipStrategy::kInstanceStore},
      {ModelId::kParanjape, "Paranjape et al. (store)",
       StaticFlipStrategy::kInstanceStore},
      {ModelId::kParanjape, "Paranjape et al. (scoped)",
       StaticFlipStrategy::kScopedRecount},
  };
  for (const Row& row : rows) {
    const StreamBenchResult result =
        RunOne(graph, row.model, kBatchSize, row.strategy);
    if (result.final_total != result.naive_final_total) {
      std::fprintf(stderr,
                   "FATAL: incremental (%llu) and naive (%llu) disagree\n",
                   static_cast<unsigned long long>(result.final_total),
                   static_cast<unsigned long long>(result.naive_final_total));
      return 1;
    }
    const double speedup =
        result.incremental_seconds > 0
            ? result.naive_seconds / result.incremental_seconds
            : 0.0;
    const double events_per_sec =
        result.incremental_seconds > 0
            ? static_cast<double>(result.stats.events_ingested) /
                  result.incremental_seconds
            : 0.0;
    char cell[32];
    table.AddRow().AddCell(row.label);
    std::snprintf(cell, sizeof(cell), "%.3fs", result.incremental_seconds);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.3fs", result.naive_seconds);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.1fx", speedup);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.0f", events_per_sec);
    table.AddCell(cell);
    table.AddHumanCount(result.final_total);
    if (row.model == ModelId::kSong) {
      recorded_incremental = result.incremental_seconds;
      recorded_naive = result.naive_seconds;
      recorded_events_per_sec = events_per_sec;
    } else if (row.model == ModelId::kHulovatyy) {
      hulovatyy_events_per_sec = events_per_sec;
    } else if (row.model == ModelId::kParanjape &&
               row.strategy == StaticFlipStrategy::kInstanceStore) {
      paranjape_events_per_sec = events_per_sec;
      paranjape_store_flips =
          static_cast<double>(result.stats.store_flip_batches);
      paranjape_store_touched =
          static_cast<double>(result.stats.store_entries_touched);
      paranjape_fallbacks =
          static_cast<double>(result.stats.static_fallbacks);
    } else if (row.model == ModelId::kParanjape) {
      paranjape_scoped_events_per_sec = events_per_sec;
    }
  }
  std::printf("%s\n", table.Render().c_str());

  WriteBenchResult(
      args, "stream_ingest", recorded_incremental,
      {{"naive_seconds", recorded_naive},
       {"speedup", recorded_incremental > 0
                       ? recorded_naive / recorded_incremental
                       : 0.0},
       {"events_per_sec", recorded_events_per_sec},
       {"speedup_vs_seed", recorded_events_per_sec / kSeedEventsPerSec},
       {"paranjape_events_per_sec", paranjape_events_per_sec},
       {"paranjape_store_flip_batches", paranjape_store_flips},
       {"paranjape_store_entries_touched", paranjape_store_touched},
       {"paranjape_full_fallbacks", paranjape_fallbacks},
       {"paranjape_scoped_events_per_sec", paranjape_scoped_events_per_sec},
       {"paranjape_store_vs_scoped",
        paranjape_scoped_events_per_sec > 0
            ? paranjape_events_per_sec / paranjape_scoped_events_per_sec
            : 0.0},
       {"hulovatyy_events_per_sec", hulovatyy_events_per_sec}});
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
