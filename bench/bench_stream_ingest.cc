// Streaming ingestion throughput: incremental sliding-window maintenance
// (stream/streaming_counter.h) versus the naive alternative of recounting
// the whole window from scratch after every batch. The acceptance bar for
// the streaming subsystem is a >= 5x speedup on the small preset dataset;
// the recorded BENCH_stream_ingest.json carries both times and the ratio so
// tools/bench_diff can track the trajectory.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/models/model_info.h"
#include "stream/streaming_counter.h"

namespace tmotif {
namespace {

constexpr std::size_t kBatchSize = 64;
constexpr std::int64_t kWindowEvents = 2048;
constexpr Timestamp kDeltaC = 900;
constexpr Timestamp kDeltaW = 1800;

// Seed-baseline ingest throughput of the headline (Song) configuration at
// scale 0.05 / seed 42, measured at the pre-optimization tree (PR 2 head,
// Release, the CI reference machine): 2990 events in 23.5 ms, when the
// window graph was still rebuilt O(W) per batch. speedup_vs_seed in the
// BENCH record is this run's events/s over the frozen baseline; refresh
// the constant if the reference hardware changes.
constexpr double kSeedEventsPerSec = 127259.0;

struct StreamBenchResult {
  double incremental_seconds = 0.0;
  double naive_seconds = 0.0;
  std::uint64_t final_total = 0;
  std::uint64_t naive_final_total = 0;
  IngestStats stats;
};

StreamBenchResult RunOne(const TemporalGraph& graph, const ModelId model,
                         std::size_t batch_size = kBatchSize) {
  StreamConfig config;
  config.options = OptionsForModel(model, /*num_events=*/3, /*max_nodes=*/3,
                                   kDeltaC, kDeltaW);
  config.window = WindowPolicy::CountBased(kWindowEvents);
  const std::vector<Event>& events = graph.events();

  StreamBenchResult result;
  {
    StreamingMotifCounter counter(config);
    WallTimer timer;
    for (std::size_t begin = 0; begin < events.size(); begin += batch_size) {
      const std::size_t end = std::min(events.size(), begin + batch_size);
      counter.Ingest(std::vector<Event>(
          events.begin() + static_cast<std::ptrdiff_t>(begin),
          events.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    result.incremental_seconds = timer.Seconds();
    result.final_total = counter.total();
    result.stats = counter.stats();
  }
  {
    // Naive baseline: identical window semantics, but every batch rebuilds
    // the window graph and recounts it from scratch.
    StreamWindow window(config.window);
    MotifCounts counts;
    WallTimer timer;
    for (std::size_t begin = 0; begin < events.size(); begin += batch_size) {
      const std::size_t end = std::min(events.size(), begin + batch_size);
      const std::vector<Event> batch(
          events.begin() + static_cast<std::ptrdiff_t>(begin),
          events.begin() + static_cast<std::ptrdiff_t>(end));
      window.Apply(window.PlanIngest(batch), batch);
      TemporalGraphBuilder builder;
      for (const Event& e : window.events()) builder.AddEvent(e);
      counts = CountMotifs(builder.Build(), config.options);
    }
    result.naive_seconds = timer.Seconds();
    result.naive_final_total = counts.total();
  }
  return result;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  PrintBenchHeader(
      "Streaming ingestion vs naive recount",
      "sliding-window maintenance (stream/), 3n3e presets, window " +
          std::to_string(kWindowEvents) + " events, batch " +
          std::to_string(kBatchSize),
      args);

  const DatasetId dataset = DatasetId::kCollegeMsg;
  const TemporalGraph graph = LoadBenchDataset(dataset, args);
  std::printf("%s: %d events\n\n", DatasetName(dataset), graph.num_events());

  TextTable table({"Model", "Incremental", "Naive recount", "Speedup",
                   "Events/s", "Final window motifs"});
  double recorded_incremental = 0.0;
  double recorded_naive = 0.0;
  double recorded_events_per_sec = 0.0;
  // Song (dW only) is the headline configuration: it has no non-local
  // predicate, so it shows the pure delta path. Kovanen adds the
  // consecutive-events restriction and its boundary corrections. Paranjape
  // adds static inducedness: its static-edge flips land on the scoped
  // (neighborhood-restricted) recount, whose cost the record tracks.
  double paranjape_events_per_sec = 0.0;
  double paranjape_scoped = 0.0;
  double paranjape_fallbacks = 0.0;
  // Paranjape runs at a small batch size: static-edge flips are then few
  // and local, which is the regime the scoped recount is built for (large
  // batches flip wide swaths of the edge set and take the full-recount
  // fallback by design — the cost gate keeps them at naive parity).
  constexpr std::size_t kParanjapeBatch = 4;
  for (const ModelId model :
       {ModelId::kSong, ModelId::kKovanen, ModelId::kParanjape}) {
    const StreamBenchResult result =
        RunOne(graph, model,
               model == ModelId::kParanjape ? kParanjapeBatch : kBatchSize);
    if (result.final_total != result.naive_final_total) {
      std::fprintf(stderr,
                   "FATAL: incremental (%llu) and naive (%llu) disagree\n",
                   static_cast<unsigned long long>(result.final_total),
                   static_cast<unsigned long long>(result.naive_final_total));
      return 1;
    }
    const double speedup =
        result.incremental_seconds > 0
            ? result.naive_seconds / result.incremental_seconds
            : 0.0;
    const double events_per_sec =
        result.incremental_seconds > 0
            ? static_cast<double>(result.stats.events_ingested) /
                  result.incremental_seconds
            : 0.0;
    char cell[32];
    table.AddRow().AddCell(GetModelAspects(model).name);
    std::snprintf(cell, sizeof(cell), "%.3fs", result.incremental_seconds);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.3fs", result.naive_seconds);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.1fx", speedup);
    table.AddCell(cell);
    std::snprintf(cell, sizeof(cell), "%.0f", events_per_sec);
    table.AddCell(cell);
    table.AddHumanCount(result.final_total);
    if (model == ModelId::kSong) {
      recorded_incremental = result.incremental_seconds;
      recorded_naive = result.naive_seconds;
      recorded_events_per_sec = events_per_sec;
    } else if (model == ModelId::kParanjape) {
      paranjape_events_per_sec = events_per_sec;
      paranjape_scoped =
          static_cast<double>(result.stats.scoped_static_recounts);
      paranjape_fallbacks =
          static_cast<double>(result.stats.static_fallbacks);
    }
  }
  std::printf("%s\n", table.Render().c_str());

  WriteBenchResult(args, "stream_ingest", recorded_incremental,
                   {{"naive_seconds", recorded_naive},
                    {"speedup", recorded_incremental > 0
                                    ? recorded_naive / recorded_incremental
                                    : 0.0},
                    {"events_per_sec", recorded_events_per_sec},
                    {"speedup_vs_seed",
                     recorded_events_per_sec / kSeedEventsPerSec},
                    {"paranjape_events_per_sec", paranjape_events_per_sec},
                    {"paranjape_scoped_recounts", paranjape_scoped},
                    {"paranjape_full_fallbacks", paranjape_fallbacks}});
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
