// bench_obs_overhead: proves the telemetry subsystem (src/obs/) stays
// under its hot-path overhead bar. Two binaries are built from this one
// source (CMakeLists.txt):
//
//   * bench_obs_overhead — the instrumented half, linked against the
//     regular tmotif library. It times a counting workload and a streaming
//     ingest workload, then spawns its sibling binary and compares.
//   * bench_obs_overhead_baseline (TMOTIF_OBS_BASELINE_BINARY) — the same
//     workloads linked against tmotif_nt, the TMOTIF_NO_TELEMETRY copy of
//     the library where every metric and phase timer compiles to nothing.
//     It prints its timings as one flat JSON line on stdout and exits; it
//     is never run standalone (tools/run_benches.sh skips it).
//
// The recorded BENCH_obs_overhead.json carries both times and the
// instrumented/compiled-out wall-time ratios (~1.0, lower is better);
// tools/bench_diff gates `obs_overhead.counting_overhead_ratio` and
// `obs_overhead.ingest_overhead_ratio` against the rolling baseline, so a
// change that makes instrumentation expensive fails CI even though both
// binaries individually still "work". The acceptance bar for the obs
// subsystem is < 2% on a quiet machine (docs/OBSERVABILITY.md records the
// reference numbers); the bench itself only hard-fails on a count
// mismatch between the two library copies, since sub-millisecond timing
// noise would make an absolute-ratio assertion flaky at CI scale.
//
// Deliberately does NOT use bench/bench_util: bench_util links the
// instrumented tmotif library, which the baseline binary must not mix
// with tmotif_nt. Both halves therefore share the small flag parser and
// record writer below.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/counter.h"
#include "core/models/model_info.h"
#include "gen/presets.h"
#include "stream/streaming_counter.h"

namespace tmotif {
namespace {

constexpr std::size_t kBatchSize = 64;
constexpr std::int64_t kWindowEvents = 2048;
constexpr Timestamp kDeltaC = 900;
constexpr Timestamp kDeltaW = 1800;
// Best-of-N minimum: robust against one-off scheduler hiccups, which is
// what makes a ~1.00 ratio reproducible at bench scale.
constexpr int kCountingReps = 5;
constexpr int kIngestReps = 3;

struct Args {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::string out_dir = "bench_out";
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--scale=")) {
      args.scale = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out=")) {
      args.out_dir = v;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=X] [--seed=N] [--out=DIR]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timings {
  double counting_seconds = 0.0;
  double ingest_seconds = 0.0;
  std::uint64_t counting_total = 0;
  std::uint64_t ingest_total = 0;
};

/// The instrumented surfaces under test, identical in both binaries:
/// counting covers fast-path and generic dispatch, the packed-table probe
/// counters and the counting latency histograms; ingest covers the
/// per-phase timers, the per-batch IngestStats delta-publish and the
/// live-instance-store gauges.
Timings RunWorkloads(const TemporalGraph& graph) {
  Timings t;
  const EnumerationOptions song =
      OptionsForModel(ModelId::kSong, /*num_events=*/3, /*max_nodes=*/3,
                      kDeltaC, kDeltaW);
  const EnumerationOptions paranjape =
      OptionsForModel(ModelId::kParanjape, /*num_events=*/3, /*max_nodes=*/3,
                      kDeltaC, kDeltaW);
  for (int rep = 0; rep < kCountingReps; ++rep) {
    const double start = NowSeconds();
    const std::uint64_t total =
        CountMotifs(graph, song).total() + CountMotifs(graph, paranjape).total();
    const double elapsed = NowSeconds() - start;
    if (rep == 0 || elapsed < t.counting_seconds) {
      t.counting_seconds = elapsed;
    }
    t.counting_total = total;
  }

  StreamConfig config;
  config.options = paranjape;
  config.window = WindowPolicy::CountBased(kWindowEvents);
  config.static_flips = StaticFlipStrategy::kInstanceStore;
  const std::vector<Event>& events = graph.events();
  for (int rep = 0; rep < kIngestReps; ++rep) {
    StreamingMotifCounter counter(config);
    const double start = NowSeconds();
    for (std::size_t begin = 0; begin < events.size(); begin += kBatchSize) {
      const std::size_t end = std::min(events.size(), begin + kBatchSize);
      counter.Ingest(std::vector<Event>(
          events.begin() + static_cast<std::ptrdiff_t>(begin),
          events.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    const double elapsed = NowSeconds() - start;
    if (rep == 0 || elapsed < t.ingest_seconds) {
      t.ingest_seconds = elapsed;
    }
    t.ingest_total = counter.total();
  }
  return t;
}

TemporalGraph LoadGraph(const Args& args) {
  const DatasetId dataset = DatasetId::kCollegeMsg;
  // Same effective scale as bench_util's LoadBenchDataset, so the two
  // binaries and the other benches all agree on the workload size.
  return GenerateDataset(dataset, DefaultBenchScale(dataset) * args.scale,
                         args.seed);
}

#ifdef TMOTIF_OBS_BASELINE_BINARY

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const Timings t = RunWorkloads(LoadGraph(args));
  std::printf("{\"counting_seconds\": %.6f, \"ingest_seconds\": %.6f, "
              "\"counting_total\": %llu, \"ingest_total\": %llu}\n",
              t.counting_seconds, t.ingest_seconds,
              static_cast<unsigned long long>(t.counting_total),
              static_cast<unsigned long long>(t.ingest_total));
  return 0;
}

#else  // !TMOTIF_OBS_BASELINE_BINARY

/// Extracts the number following `"key":` from a flat JSON line (the
/// baseline binary's stdout); nullopt when absent.
std::optional<double> ExtractNumber(const std::string& json,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  char* parse_end = nullptr;
  const char* start = json.c_str() + pos + needle.size();
  const double parsed = std::strtod(start, &parse_end);
  if (parse_end == start) return std::nullopt;
  return parsed;
}

/// Runs the no-telemetry sibling (same directory as this binary) and
/// returns its stdout, or nullopt when it cannot be spawned.
std::optional<std::string> RunBaseline(const char* argv0, const Args& args) {
  std::string dir(argv0);
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  char cmd[1024];
  std::snprintf(cmd, sizeof(cmd),
                "\"%s/bench_obs_overhead_baseline\" --scale=%.17g --seed=%llu",
                dir.c_str(), args.scale,
                static_cast<unsigned long long>(args.seed));
  std::FILE* pipe = popen(cmd, "r");
  if (pipe == nullptr) return std::nullopt;
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::fprintf(stderr, "baseline exited with %d\n", rc);
    return std::nullopt;
  }
  return out;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::printf("Telemetry overhead: instrumented vs TMOTIF_NO_TELEMETRY\n");
  std::printf("(CollegeMsg preset, counting best of %d, ingest best of %d, "
              "batch %zu, window %lld events)\n\n",
              kCountingReps, kIngestReps, kBatchSize,
              static_cast<long long>(kWindowEvents));

  const TemporalGraph graph = LoadGraph(args);
  const Timings instrumented = RunWorkloads(graph);

  const std::optional<std::string> baseline_out = RunBaseline(argv[0], args);
  if (!baseline_out.has_value()) {
    std::fprintf(stderr,
                 "FATAL: could not run bench_obs_overhead_baseline (build "
                 "the `bench` target)\n");
    return 1;
  }
  Timings baseline;
  const auto require = [&](const char* key) {
    const std::optional<double> v = ExtractNumber(*baseline_out, key);
    if (!v.has_value()) {
      std::fprintf(stderr, "FATAL: baseline output lacks \"%s\": %s\n", key,
                   baseline_out->c_str());
      std::exit(1);
    }
    return *v;
  };
  baseline.counting_seconds = require("counting_seconds");
  baseline.ingest_seconds = require("ingest_seconds");
  baseline.counting_total = static_cast<std::uint64_t>(
      require("counting_total"));
  baseline.ingest_total = static_cast<std::uint64_t>(require("ingest_total"));

  // Both binaries compile the same library sources; diverging counts mean
  // TMOTIF_NO_TELEMETRY changed behavior, not just cost.
  if (baseline.counting_total != instrumented.counting_total ||
      baseline.ingest_total != instrumented.ingest_total) {
    std::fprintf(stderr,
                 "FATAL: instrumented and no-telemetry counts disagree "
                 "(counting %llu vs %llu, ingest %llu vs %llu)\n",
                 static_cast<unsigned long long>(instrumented.counting_total),
                 static_cast<unsigned long long>(baseline.counting_total),
                 static_cast<unsigned long long>(instrumented.ingest_total),
                 static_cast<unsigned long long>(baseline.ingest_total));
    return 1;
  }

  const auto ratio = [](double instr, double base) {
    return base > 0 ? instr / base : 0.0;
  };
  const double counting_ratio =
      ratio(instrumented.counting_seconds, baseline.counting_seconds);
  const double ingest_ratio =
      ratio(instrumented.ingest_seconds, baseline.ingest_seconds);
  std::printf("counting: %.4fs instrumented vs %.4fs compiled-out -> "
              "ratio %.3f\n",
              instrumented.counting_seconds, baseline.counting_seconds,
              counting_ratio);
  std::printf("ingest:   %.4fs instrumented vs %.4fs compiled-out -> "
              "ratio %.3f\n",
              instrumented.ingest_seconds, baseline.ingest_seconds,
              ingest_ratio);
  std::printf("\ntarget: <= 1.02 on a quiet machine; tools/bench_diff gates "
              "drift of both ratios against the rolling baseline.\n");

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/BENCH_obs_overhead.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\"bench\": \"obs_overhead\", \"scale\": %.4f, \"seed\": %llu, "
      "\"seconds\": %.6f, \"counting_seconds\": %.6f, "
      "\"baseline_counting_seconds\": %.6f, "
      "\"counting_overhead_ratio\": %.6f, \"ingest_seconds\": %.6f, "
      "\"baseline_ingest_seconds\": %.6f, \"ingest_overhead_ratio\": %.6f}\n",
      args.scale, static_cast<unsigned long long>(args.seed),
      instrumented.counting_seconds + instrumented.ingest_seconds,
      instrumented.counting_seconds, baseline.counting_seconds,
      counting_ratio, instrumented.ingest_seconds, baseline.ingest_seconds,
      ingest_ratio);
  std::fclose(f);
  return 0;
}

#endif  // TMOTIF_OBS_BASELINE_BINARY

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Main(argc, argv); }
