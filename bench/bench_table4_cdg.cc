// Reproduces Table 4 (+ appendix Table 7): vanilla temporal motifs vs
// constrained dynamic graphlets after degrading resolution to 300s.
// Reports the variance of proportion changes and the four focal motifs.

#include <cstdio>

#include "analysis/inducedness_analysis.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"
#include "graph/resolution.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaC = 1500;
constexpr Timestamp kResolution = 300;
const char* const kFocalMotifs[] = {"010102", "010202", "012020", "010201"};

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Constrained dynamic graphlets",
      "Table 4 (variance + focal proportion changes) and Table 7 (all 32 "
      "motifs), 3n3e, dC=1500s, resolution degraded to 300s",
      args);

  TextTable table({"Network", "Variance", "010102", "010202", "012020",
                   "010201"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "table4_cdg.csv"));
  csv.WriteRow({"dataset", "variance", "motif", "proportion_change_pp"});
  CsvWriter full(BenchOutputPath(args.out_dir, "table7_cdg_changes.csv"));
  full.WriteRow({"dataset", "motif", "proportion_change_pp"});

  for (const DatasetId id : AllDatasets()) {
    const TemporalGraph graph =
        DegradeResolution(LoadBenchDataset(id, args), kResolution);
    const CdgReport report =
        AnalyzeConstrainedDynamicGraphlets(graph, kDeltaC);

    table.AddRow().AddCell(DatasetName(id)).AddDouble(report.variance, 2);
    for (const char* motif : kFocalMotifs) {
      const double change = report.proportion_changes.at(motif);
      char cell[24];
      std::snprintf(cell, sizeof(cell), "%+.2f%%", change);
      table.AddCell(cell);
      csv.WriteRow({DatasetName(id), std::to_string(report.variance), motif,
                    std::to_string(change)});
    }
    for (const auto& [motif, change] : report.proportion_changes) {
      full.WriteRow({DatasetName(id), motif, std::to_string(change)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper shape: Bitcoin-otc shows zero difference (no repeated edges); "
      "message/email networks show the largest variance, with the delayed "
      "repetition 010201 losing share to immediate repetitions "
      "(010102/010202/012020).\n");
  WriteBenchResult(args, "table4_cdg", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
