// Reproduces Table 2: statistics of the temporal network datasets.
// Paper columns: Nodes, Events, Edges, #T, |Eu|/|E|, m(dt).

#include <cstdio>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"
#include "graph/graph_stats.h"

namespace tmotif {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader("Dataset statistics",
                   "Table 2 (datasets regenerated synthetically; large sets "
                   "downscaled)",
                   args);

  TextTable table({"Name", "Scale", "Nodes", "Events", "Edges", "#T",
                   "|Eu|/|E|", "m(dt)"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "table2_dataset_stats.csv"));
  csv.WriteRow({"dataset", "scale", "nodes", "events", "edges",
                "unique_timestamps", "frac_unique", "median_gap"});

  for (const DatasetId id : AllDatasets()) {
    const TemporalGraph graph = LoadBenchDataset(id, args);
    const GraphStats stats = ComputeStats(graph);
    table.AddRow()
        .AddCell(DatasetName(id))
        .AddDouble(EffectiveScale(id, args), 2)
        .AddHumanCount(static_cast<std::uint64_t>(stats.num_nodes))
        .AddHumanCount(static_cast<std::uint64_t>(stats.num_events))
        .AddHumanCount(static_cast<std::uint64_t>(stats.num_static_edges))
        .AddHumanCount(
            static_cast<std::uint64_t>(stats.num_unique_timestamps))
        .AddPercent(stats.frac_events_unique_timestamp)
        .AddDouble(stats.median_inter_event_time, 0);
    csv.WriteRow({DatasetName(id),
                  std::to_string(EffectiveScale(id, args)),
                  std::to_string(stats.num_nodes),
                  std::to_string(stats.num_events),
                  std::to_string(stats.num_static_edges),
                  std::to_string(stats.num_unique_timestamps),
                  std::to_string(stats.frac_events_unique_timestamp),
                  std::to_string(stats.median_inter_event_time)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper reference values (full scale): Bitcoin-otc 5.88K/35.6K "
              "99.2%% 707s; CollegeMsg 1.90K/59.8K 97.2%% 37s; Email "
              "986/332K 50.5%% 15s; SMS-A 44.4K/548K 73.1%% 3s.\n");
  WriteBenchResult(args, "table2_dataset_stats", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
