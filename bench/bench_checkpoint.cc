// Checkpoint/restore and memory-budget degradation costs for the streaming
// counter (stream/checkpoint.h, StreamConfig::store_budget_bytes).
//
// Three recorded figures, all gated by tools/bench_diff:
//   checkpoint_write_mbps    in-memory EncodeCheckpoint throughput
//   checkpoint_restore_mbps  DecodeCheckpoint-into-fresh-counter throughput
//   degraded_ingest_ratio    budget-capped ingest events/s over unlimited
//
// The write/restore figures use the in-memory codec so they measure the
// serialization cost, not the disk; one WriteCheckpoint/RestoreCheckpoint
// round through the out directory proves the durable path end to end.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/text_table.h"
#include "core/models/model_info.h"
#include "stream/checkpoint.h"
#include "stream/streaming_counter.h"

namespace tmotif {
namespace {

constexpr std::size_t kBatchSize = 64;
constexpr std::int64_t kWindowEvents = 2048;
constexpr Timestamp kDeltaC = 900;
constexpr Timestamp kDeltaW = 1800;
constexpr int kCodecIters = 50;

// Paranjape (static-induced) keeps the live-instance store active, so the
// checkpoint carries the representative state shape: window events, counts,
// and a store that restore must regenerate and cross-check.
StreamConfig BenchConfig() {
  StreamConfig config;
  config.options = OptionsForModel(ModelId::kParanjape, /*num_events=*/3,
                                   /*max_nodes=*/3, kDeltaC, kDeltaW);
  config.window = WindowPolicy::CountBased(kWindowEvents);
  return config;
}

/// Ingests `events` in kBatchSize batches; returns ingest wall seconds.
double IngestAll(StreamingMotifCounter* counter,
                 const std::vector<Event>& events) {
  WallTimer timer;
  for (std::size_t begin = 0; begin < events.size(); begin += kBatchSize) {
    const std::size_t end = std::min(events.size(), begin + kBatchSize);
    counter->Ingest(std::vector<Event>(
        events.begin() + static_cast<std::ptrdiff_t>(begin),
        events.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  return timer.Seconds();
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  PrintBenchHeader(
      "Checkpoint/restore and budget-degradation costs",
      "resilience subsystem (stream/checkpoint.h), Paranjape 3n3e, window " +
          std::to_string(kWindowEvents) + " events, batch " +
          std::to_string(kBatchSize),
      args);

  const DatasetId dataset = DatasetId::kCollegeMsg;
  const TemporalGraph graph = LoadBenchDataset(dataset, args);
  std::printf("%s: %d events\n\n", DatasetName(dataset), graph.num_events());

  const StreamConfig config = BenchConfig();
  StreamingMotifCounter counter(config);
  const double unlimited_seconds = IngestAll(&counter, graph.events());

  // Codec throughput over the fully-warmed state.
  const std::string encoded = EncodeCheckpoint(counter);
  const double checkpoint_mb = static_cast<double>(encoded.size()) / 1e6;
  double encode_seconds = 0.0;
  {
    WallTimer timer;
    for (int i = 0; i < kCodecIters; ++i) {
      const std::string bytes = EncodeCheckpoint(counter);
      if (bytes.size() != encoded.size()) {
        std::fprintf(stderr, "FATAL: encode size drifted across runs\n");
        return 1;
      }
    }
    encode_seconds = timer.Seconds();
  }
  double decode_seconds = 0.0;
  for (int i = 0; i < kCodecIters; ++i) {
    StreamingMotifCounter restored(config);
    WallTimer timer;
    const CheckpointResult result = DecodeCheckpoint(encoded, &restored);
    decode_seconds += timer.Seconds();
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: decode failed: %s\n",
                   result.message.c_str());
      return 1;
    }
    if (restored.counts().SortedByCode() != counter.counts().SortedByCode()) {
      std::fprintf(stderr, "FATAL: restored counts disagree\n");
      return 1;
    }
  }
  const double write_mbps =
      encode_seconds > 0 ? checkpoint_mb * kCodecIters / encode_seconds : 0.0;
  const double restore_mbps =
      decode_seconds > 0 ? checkpoint_mb * kCodecIters / decode_seconds : 0.0;

  // One durable round proves the atomic file path (and its fsync cost is
  // visible in stdout, though only the codec figures are gated).
  const std::string path =
      BenchOutputPath(args.out_dir, "bench_checkpoint.tmck");
  double file_round_seconds = 0.0;
  {
    WallTimer timer;
    const CheckpointResult written = WriteCheckpoint(counter, path);
    if (!written.ok()) {
      std::fprintf(stderr, "FATAL: WriteCheckpoint: %s\n",
                   written.message.c_str());
      return 1;
    }
    StreamingMotifCounter restored(config);
    const CheckpointResult read = RestoreCheckpoint(path, &restored);
    if (!read.ok()) {
      std::fprintf(stderr, "FATAL: RestoreCheckpoint: %s\n",
                   read.message.c_str());
      return 1;
    }
    file_round_seconds = timer.Seconds();
  }
  std::remove(path.c_str());

  // Degraded ingest: an impossible budget pins the counter on the bottom
  // rung (scoped recount) for the whole replay — the worst case the
  // degradation ladder can impose. The ratio to the unlimited run is the
  // price of staying within budget; higher (closer to 1) is better.
  StreamConfig degraded_config = config;
  degraded_config.store_budget_bytes = 1;
  StreamingMotifCounter degraded(degraded_config);
  const double degraded_seconds = IngestAll(&degraded, graph.events());
  if (degraded.counts().SortedByCode() != counter.counts().SortedByCode()) {
    std::fprintf(stderr, "FATAL: degraded run changed the counts\n");
    return 1;
  }
  const double events = static_cast<double>(graph.num_events());
  const double unlimited_eps =
      unlimited_seconds > 0 ? events / unlimited_seconds : 0.0;
  const double degraded_eps =
      degraded_seconds > 0 ? events / degraded_seconds : 0.0;
  const double degraded_ratio =
      unlimited_eps > 0 ? degraded_eps / unlimited_eps : 0.0;

  TextTable table({"Figure", "Value"});
  char cell[64];
  std::snprintf(cell, sizeof(cell), "%.3f MB", checkpoint_mb);
  table.AddRow().AddCell("Checkpoint size").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.1f MB/s", write_mbps);
  table.AddRow().AddCell("Encode throughput").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.1f MB/s", restore_mbps);
  table.AddRow().AddCell("Restore throughput").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.3fs", file_round_seconds);
  table.AddRow().AddCell("Durable write+restore round").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.0f ev/s", unlimited_eps);
  table.AddRow().AddCell("Ingest, unlimited store").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.0f ev/s", degraded_eps);
  table.AddRow().AddCell("Ingest, 1-byte budget").AddCell(cell);
  std::snprintf(cell, sizeof(cell), "%.2fx", degraded_ratio);
  table.AddRow().AddCell("Degraded/unlimited ratio").AddCell(cell);
  std::printf("%s\n", table.Render().c_str());

  WriteBenchResult(args, "checkpoint", encode_seconds + decode_seconds,
                   {{"checkpoint_mb", checkpoint_mb},
                    {"checkpoint_write_mbps", write_mbps},
                    {"checkpoint_restore_mbps", restore_mbps},
                    {"file_round_seconds", file_round_seconds},
                    {"unlimited_events_per_sec", unlimited_eps},
                    {"degraded_events_per_sec", degraded_eps},
                    {"degraded_ingest_ratio", degraded_ratio}});
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
