// Node-space sharded counting scaling bench (algorithms/sharded.h).
//
// Counts the same motif workload serially and sharded at shard counts
// {1, 2, 4, all-cores} on a community-structured graph whose working set
// exceeds one socket's L2/L3 slice at full scale, and records events/s and
// instances/s per shard count plus `scaling_efficiency` into
// BENCH_sharded_scaling.json (bench_diff-gated, higher is better).
//
// scaling_efficiency is defined as serial CPU seconds / aggregate per-shard
// CPU seconds at 4 shards — the work-preservation ratio. It is the
// machine-independent upper bound on per-shard parallel speedup (wall-clock
// speedup = num_shards × efficiency on enough cores), so the gate stays
// meaningful on single-core CI runners where wall time cannot improve. The
// halo is the only source of redundant work, so the ratio directly measures
// how much counting the boundary replication re-does; CPU time (not wall)
// makes it immune to oversubscription when shards share cores.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/partition.h"
#include "algorithms/sharded.h"
#include "bench_util.h"
#include "core/counter.h"
#include "core/enumerator.h"
#include "graph/temporal_graph.h"

namespace tmotif {
namespace {

/// Community-structured event stream: `num_communities` groups of
/// `nodes_per_community` nodes with mostly intra-community events and a
/// small fraction of bridges to the next community. Node ids are laid out
/// community-major so ShardPlan::Blocks aligns shards with communities —
/// the layout a locality-aware partitioner would produce — while the
/// bridges guarantee real cross-shard instances.
TemporalGraph MakeCommunityGraph(int num_communities, int nodes_per_community,
                                 int num_events, double bridge_fraction,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> community(0, num_communities - 1);
  std::uniform_int_distribution<int> member(0, nodes_per_community - 1);
  TemporalGraphBuilder builder;
  Timestamp t = 0;
  for (int i = 0; i < num_events; ++i) {
    t += 1 + static_cast<Timestamp>(rng() % 3);
    const int c = community(rng);
    const NodeId base = static_cast<NodeId>(c) * nodes_per_community;
    const NodeId src = base + member(rng);
    NodeId dst;
    if (unit(rng) < bridge_fraction && num_communities > 1) {
      const NodeId next_base =
          static_cast<NodeId>((c + 1) % num_communities) * nodes_per_community;
      dst = next_base + member(rng);
    } else {
      do {
        dst = base + member(rng);
      } while (dst == src);
    }
    if (src == dst) continue;
    builder.AddEvent(src, dst, t);
  }
  builder.SetMinNumNodes(static_cast<NodeId>(num_communities) *
                         nodes_per_community);
  return builder.Build();
}

}  // namespace

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  PrintBenchHeader("Node-space sharded counting scaling",
                   "ROADMAP item 2 (scale-out counting)", args);

  // ~200k events at scale 1.0. The community count is fixed (not scaled):
  // a shard of the 4-shard run owns 16 contiguous communities and its halo
  // reaches roughly the two ring-neighbor communities, so the redundant
  // boundary work stays a small fixed fraction of the owned work at every
  // scale — the property the efficiency gate pins. 2% bridge events keep
  // cross-shard stitching honest.
  const int num_events =
      std::max(4000, static_cast<int>(200000 * args.scale_multiplier));
  const int nodes_per_community = 12;
  const int num_communities = 64;
  const double bridge_fraction = 0.02;
  const TemporalGraph graph =
      MakeCommunityGraph(num_communities, nodes_per_community, num_events,
                         bridge_fraction, args.seed);

  // k=4 motifs keep counting on the generic DfsEngine for every shard
  // count (no k<=3 fast path), so throughput ratios compare identical
  // engines; dW bounds the per-root work.
  EnumerationOptions options;
  options.num_events = 4;
  options.max_nodes = 4;
  options.timing.delta_w = 1500;

  std::printf("graph: %d communities x %d nodes, %lld events, %zu static "
              "edges\n",
              num_communities, nodes_per_community,
              static_cast<long long>(graph.num_events()),
              graph.num_static_edges());

  WallTimer serial_timer;
  const double serial_cpu_start = internal::ThreadCpuSeconds();
  const MotifCounts serial = CountMotifs(graph, options);
  const double serial_cpu = internal::ThreadCpuSeconds() - serial_cpu_start;
  const double serial_seconds = serial_timer.Seconds();
  std::printf("serial: %.3fs wall, %.3fs cpu, %llu instances\n",
              serial_seconds, serial_cpu,
              static_cast<unsigned long long>(serial.total()));

  const int all_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<std::pair<std::string, int>> shard_runs = {
      {"1", 1}, {"2", 2}, {"4", 4}, {"all", all_cores}};

  std::vector<std::pair<std::string, double>> extra;
  extra.emplace_back("events", static_cast<double>(graph.num_events()));
  extra.emplace_back("serial_seconds", serial_seconds);
  extra.emplace_back("all_cores", static_cast<double>(all_cores));

  double efficiency_at_4 = 0.0;
  double total_seconds = serial_seconds;
  for (const auto& [label, num_shards] : shard_runs) {
    const ShardPlan plan = ShardPlan::Blocks(graph.num_nodes(), num_shards);
    WallTimer timer;
    const ShardedCountResult result =
        CountMotifsShardedWithStats(graph, options, plan);
    const double wall = timer.Seconds();
    total_seconds += wall;
    if (result.counts.SortedByCode() != serial.SortedByCode()) {
      std::fprintf(stderr, "FATAL: sharded counts diverge at %d shards\n",
                   num_shards);
      return 1;
    }
    const double aggregate = result.AggregateCpuSeconds();
    const double efficiency = aggregate > 0.0 ? serial_cpu / aggregate : 0.0;
    const double events_per_sec =
        wall > 0.0 ? static_cast<double>(graph.num_events()) / wall : 0.0;
    const double instances_per_sec =
        wall > 0.0 ? static_cast<double>(result.counts.total()) / wall : 0.0;
    NodeId halo = 0;
    for (const ShardCountStats& s : result.shards) halo += s.halo_nodes;
    std::printf(
        "shards=%-3s (%d): wall %.3fs, aggregate cpu %.3fs, efficiency "
        "%.2f, %.0f events/s, %.0f instances/s, %d halo nodes, "
        "%llu cross-shard\n",
        label.c_str(), num_shards, wall, aggregate, efficiency,
        events_per_sec, instances_per_sec, halo,
        static_cast<unsigned long long>(result.CrossShardInstances()));
    extra.emplace_back("events_per_sec_shards_" + label, events_per_sec);
    extra.emplace_back("instances_per_sec_shards_" + label,
                       instances_per_sec);
    extra.emplace_back("aggregate_cpu_seconds_shards_" + label, aggregate);
    extra.emplace_back("halo_nodes_shards_" + label,
                       static_cast<double>(halo));
    if (num_shards == 4) efficiency_at_4 = efficiency;
  }
  extra.emplace_back("scaling_efficiency", efficiency_at_4);
  std::printf("scaling_efficiency (serial cpu / aggregate cpu @4 shards): "
              "%.2f\n",
              efficiency_at_4);

  WriteBenchResult(args, "sharded_scaling", total_seconds, extra);
  return 0;
}

}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
