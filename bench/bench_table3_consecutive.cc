// Reproduces Table 3 (+ appendix Table 6): the impact of the Kovanen
// consecutive-events restriction on 3n3e motif counts, with the ranking
// changes of the four ask-reply motifs the paper finds amplified.

#include <cstdio>

#include "analysis/inducedness_analysis.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaC = 1500;
const char* const kFocalMotifs[] = {"010210", "011210", "012010", "012110"};

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Consecutive-events restriction",
      "Table 3 (totals + focal rank changes) and Table 6 (all 32 motifs), "
      "3n3e, dC=1500s",
      args);

  TextTable table({"Network", "Non-cons.", "Cons.", "Removed", "010210",
                   "011210", "012010", "012110"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "table3_consecutive.csv"));
  csv.WriteRow({"dataset", "non_consecutive_total", "consecutive_total",
                "removed_fraction", "motif", "rank_change"});
  CsvWriter full(BenchOutputPath(args.out_dir, "table6_rank_changes.csv"));
  full.WriteRow({"dataset", "motif", "rank_change"});

  for (const DatasetId id : AllDatasets()) {
    const TemporalGraph graph = LoadBenchDataset(id, args);
    const ConsecutiveRestrictionReport report =
        AnalyzeConsecutiveRestriction(graph, kDeltaC);

    table.AddRow()
        .AddCell(DatasetName(id))
        .AddHumanCount(report.non_consecutive_total)
        .AddHumanCount(report.consecutive_total)
        .AddPercent(report.RemovedFraction());
    for (const char* motif : kFocalMotifs) {
      const int change = report.rank_changes.at(motif);
      char cell[16];
      std::snprintf(cell, sizeof(cell), "%+d", change);
      table.AddCell(cell);
      csv.WriteRow({DatasetName(id),
                    std::to_string(report.non_consecutive_total),
                    std::to_string(report.consecutive_total),
                    std::to_string(report.RemovedFraction()), motif,
                    std::to_string(change)});
    }
    for (const auto& [motif, change] : report.rank_changes) {
      full.WriteRow({DatasetName(id), motif, std::to_string(change)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper shape: >95%% of motifs removed on all datasets except "
      "Bitcoin-otc; the four ask-reply motifs are amplified, most strongly "
      "on message networks (CollegeMsg +18/+23/+10/+16).\n");
  WriteBenchResult(args, "table3_consecutive", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
