// Ablation for the paper's "Comparison criteria" discussion: randomized
// reference models are either too restrictive (motif counts barely change)
// or too loose (counts collapse, everything looks significant). We compare
// 3n3e totals on the original network against four reference models.

#include <cstdio>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/random.h"
#include "common/text_table.h"
#include "analysis/significance.h"
#include "core/counter.h"
#include "nullmodels/shuffling.h"

namespace tmotif {
namespace {

std::uint64_t CountThreeEvent(const TemporalGraph& graph) {
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::Both(2000, 3000);
  return CountInstances(graph, o);
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Null-model instability",
      "Section 5 'Comparison criteria': no reference model preserves both "
      "structure and temporal correlations",
      args);

  TextTable table({"Network", "Original", "Time shuffle", "Gap shuffle",
                   "Link shuffle", "Uniform times"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "ablation_nullmodels.csv"));
  csv.WriteRow({"dataset", "model", "count", "ratio_vs_original"});

  for (const DatasetId id :
       {DatasetId::kSmsCopenhagen, DatasetId::kCollegeMsg,
        DatasetId::kCallsCopenhagen}) {
    const TemporalGraph graph = LoadBenchDataset(id, args);
    Rng rng(args.seed);

    const std::uint64_t original = CountThreeEvent(graph);
    const std::uint64_t time_shuffled =
        CountThreeEvent(ShuffleTimestamps(graph, &rng));
    const std::uint64_t gap_shuffled =
        CountThreeEvent(ShuffleInterEventTimes(graph, &rng));
    const std::uint64_t link_shuffled =
        CountThreeEvent(ShuffleLinks(graph, &rng));
    const std::uint64_t uniform =
        CountThreeEvent(UniformTimes(graph, &rng));

    table.AddRow()
        .AddCell(DatasetName(id))
        .AddHumanCount(original)
        .AddHumanCount(time_shuffled)
        .AddHumanCount(gap_shuffled)
        .AddHumanCount(link_shuffled)
        .AddHumanCount(uniform);

    const struct {
      const char* name;
      std::uint64_t count;
    } rows[] = {{"original", original},
                {"time_shuffle", time_shuffled},
                {"gap_shuffle", gap_shuffled},
                {"link_shuffle", link_shuffled},
                {"uniform_times", uniform}};
    for (const auto& row : rows) {
      csv.WriteRow({DatasetName(id), row.name, std::to_string(row.count),
                    std::to_string(original == 0
                                       ? 0.0
                                       : static_cast<double>(row.count) /
                                             static_cast<double>(original))});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Z-scores of the top motifs against two reference models: the paper's
  // point is that the loose models flag *everything* as significant while
  // the restrictive one flags nothing reliably.
  {
    const TemporalGraph graph =
        LoadBenchDataset(DatasetId::kSmsCopenhagen, args);
    EnumerationOptions o;
    o.num_events = 3;
    o.max_nodes = 3;
    o.timing = TimingConstraints::Both(2000, 3000);
    TextTable ztable({"Motif", "Observed", "z (time-shuffle)",
                      "z (gap-shuffle)"});
    Rng rng1(args.seed);
    Rng rng2(args.seed);
    const auto loose = ComputeMotifSignificance(
        graph, o, {ReferenceModel::kTimeShuffle, 6}, &rng1);
    const auto tight = ComputeMotifSignificance(
        graph, o, {ReferenceModel::kGapShuffle, 6}, &rng2);
    const MotifCounts counts = CountMotifs(graph, o);
    int shown = 0;
    for (const auto& [code, count] : counts.SortedByCount()) {
      if (++shown > 8) break;
      ztable.AddRow()
          .AddCell(code)
          .AddUint(count)
          .AddDouble(loose.at(code).z_score, 1)
          .AddDouble(tight.at(code).z_score, 1);
    }
    std::printf("SMS-Copen. z-scores (3n3e, dC=2000s dW=3000s, 6 samples):\n");
    std::printf("%s\n", ztable.Render().c_str());
  }

  std::printf(
      "Expected: time/uniform shuffles destroy the bursty correlations and "
      "collapse counts by orders of magnitude (too loose: every real motif "
      "looks significant), while the gap shuffle keeps global burstiness "
      "and stays closer to the original (too restrictive for link-level "
      "correlations). No model reproduces the real counts - the paper's "
      "reason for using raw counts as the significance indicator.\n");
  WriteBenchResult(args, "ablation_nullmodels", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
