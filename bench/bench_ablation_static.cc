// Ablation for the paper's premise (Section 1): temporal information
// multiplies the motif spectrum and sharpens analysis. We compare the
// snapshot-era *communication motif* view (Zhao et al. [21]: static form
// only, no event order) against temporal motif codes on the same data:
//   * the 36-code temporal spectrum collapses to ~a dozen static forms;
//   * datasets that temporal codes separate cleanly become much harder to
//     tell apart from their static-form distributions.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"
#include "core/counter.h"
#include "core/models/zhao.h"
#include "core/static_form.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaT = 1500;

std::map<std::string, double> TemporalDistribution(
    const TemporalGraph& graph) {
  EnumerationOptions o;
  o.num_events = 3;
  o.max_nodes = 3;
  o.timing = TimingConstraints::OnlyDeltaC(kDeltaT);
  const MotifCounts counts = CountMotifs(graph, o);
  std::map<std::string, double> dist;
  if (counts.total() == 0) return dist;
  for (const auto& [code, count] : counts.raw()) {
    dist[code] = static_cast<double>(count) /
                 static_cast<double>(counts.total());
  }
  return dist;
}

std::map<std::string, double> StaticDistribution(const TemporalGraph& graph) {
  ZhaoConfig config{3, 3, kDeltaT};
  const auto counts = CountCommunicationMotifs(graph, config);
  std::uint64_t total = 0;
  for (const auto& [form, count] : counts) total += count;
  std::map<std::string, double> dist;
  if (total == 0) return dist;
  for (const auto& [form, count] : counts) {
    dist[form] = static_cast<double>(count) / static_cast<double>(total);
  }
  return dist;
}

double L1Distance(const std::map<std::string, double>& a,
                  const std::map<std::string, double>& b) {
  double total = 0.0;
  for (const auto& [key, value] : a) {
    const auto it = b.find(key);
    total += std::abs(value - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [key, value] : b) {
    if (a.find(key) == a.end()) total += value;
  }
  return 0.5 * total;  // Total variation distance in [0, 1].
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Static vs temporal motif resolution",
      "Section 1 premise + related work [21]: what the snapshot-era static "
      "view loses relative to temporal motif codes (3-event, dt=1500s)",
      args);

  const DatasetId ids[] = {DatasetId::kSmsCopenhagen,
                           DatasetId::kCallsCopenhagen,
                           DatasetId::kStackOverflow};
  std::map<std::string, double> temporal[3];
  std::map<std::string, double> statics[3];
  for (int i = 0; i < 3; ++i) {
    const TemporalGraph graph = LoadBenchDataset(ids[i], args);
    temporal[i] = TemporalDistribution(graph);
    statics[i] = StaticDistribution(graph);
  }

  TextTable spectrum({"Network", "Temporal codes observed",
                      "Static forms observed"});
  for (int i = 0; i < 3; ++i) {
    spectrum.AddRow()
        .AddCell(DatasetName(ids[i]))
        .AddUint(temporal[i].size())
        .AddUint(statics[i].size());
  }
  std::printf("%s\n", spectrum.Render().c_str());

  TextTable distances({"Pair", "TV distance (temporal)",
                       "TV distance (static)"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "ablation_static.csv"));
  csv.WriteRow({"pair", "tv_temporal", "tv_static"});
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      const std::string pair = std::string(DatasetName(ids[i])) + " vs " +
                               DatasetName(ids[j]);
      const double dt = L1Distance(temporal[i], temporal[j]);
      const double ds = L1Distance(statics[i], statics[j]);
      distances.AddRow().AddCell(pair).AddDouble(dt, 3).AddDouble(ds, 3);
      csv.WriteRow({pair, std::to_string(dt), std::to_string(ds)});
    }
  }
  std::printf("%s\n", distances.Render().c_str());
  std::printf(
      "Expected: every dataset uses (nearly) the full 36-code temporal "
      "spectrum but only ~a dozen static forms, and the temporal "
      "distributions separate the datasets at least as sharply as the "
      "static ones - the information the paper's Section 1 attributes to "
      "event order and timing.\n");
  WriteBenchResult(args, "ablation_static", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
