// Reproduces Figure 3 (+ appendix Figures 7-8): ratios of the six event
// pair types in three-event and four-event motifs, comparing only-dW and
// only-dC configurations (the paper's pie charts, printed as rows).

#include <cstdio>

#include "analysis/event_pair_analysis.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaW = 3000;

EnumerationOptions ConfigFor(int num_events, bool only_dw) {
  EnumerationOptions o;
  o.num_events = num_events;
  o.max_nodes = num_events;  // <=3 nodes for 3e, <=4 nodes for 4e.
  if (only_dw) {
    o.timing = TimingConstraints::OnlyDeltaW(kDeltaW);
  } else {
    // only-dC: ratio 1/(m-1) -> dC = dW / (m-1).
    o.timing = TimingConstraints::Both(kDeltaW / (num_events - 1), kDeltaW);
  }
  return o;
}

// Four-event enumeration is cubic in burst size; run it at a reduced extra
// scale so the full suite stays fast (the paper similarly slices its
// largest dataset for efficiency).
constexpr double kFourEventExtraScale = 0.35;

int Run(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Event-pair ratios",
      "Figure 3 and Figures 7-8: six pair-type ratios, 3e and 4e motifs, "
      "only-dW vs only-dC (dW=3000s)",
      args);

  TextTable table({"Network", "Motifs", "Config", "R", "P", "I", "O", "C",
                   "W"});
  CsvWriter csv(BenchOutputPath(args.out_dir, "fig3_event_pair_ratios.csv"));
  csv.WriteRow({"dataset", "num_events", "config", "R", "P", "I", "O", "C",
                "W"});

  for (const DatasetId id : AllDatasets()) {
    for (const int k : {3, 4}) {
      BenchArgs scaled = args;
      if (k == 4) scaled.scale_multiplier *= kFourEventExtraScale;
      const TemporalGraph graph = LoadBenchDataset(id, scaled);
      for (const bool only_dw : {true, false}) {
        const EventPairStats stats =
            CollectEventPairStats(graph, ConfigFor(k, only_dw));
        table.AddRow()
            .AddCell(DatasetName(id))
            .AddCell(k == 3 ? "3e" : "4e")
            .AddCell(only_dw ? "only-dW" : "only-dC");
        std::vector<std::string> row = {DatasetName(id), std::to_string(k),
                                        only_dw ? "only-dW" : "only-dC"};
        for (int t = 0; t < kNumEventPairTypes; ++t) {
          const double ratio = stats.Ratio(static_cast<EventPairType>(t));
          table.AddPercent(ratio);
          row.push_back(std::to_string(ratio));
        }
        csv.WriteRow(row);
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper shape: the repetition share decreases when going from only-dW "
      "to only-dC in almost all datasets, while the increasing type varies "
      "(in-bursts for stack exchange, ping-pongs/conveys for calls).\n");
  WriteBenchResult(args, "fig3_event_pair_ratios", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
