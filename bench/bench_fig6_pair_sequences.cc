// Reproduces Figure 6 (+ appendix Figure 11): heat maps of ordered event
// pair sequences for all three-event motifs (rows = first pair, columns =
// second pair, log-scaled), with dC=2000s and dW=3000s.

#include <cstdio>

#include "analysis/event_pair_analysis.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"

namespace tmotif {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Ordered event-pair sequences",
      "Figure 6 (SMS-A, SMS-Copen., Calls-Copen., Email) and Figure 11 "
      "(remaining datasets); 3-event motifs, dC=2000s, dW=3000s",
      args);

  EnumerationOptions options;
  options.num_events = 3;
  options.max_nodes = 3;
  options.timing = TimingConstraints::Both(2000, 3000);

  CsvWriter csv(BenchOutputPath(args.out_dir, "fig6_pair_sequences.csv"));
  csv.WriteRow({"dataset", "first_pair", "second_pair", "count",
                "log_intensity"});

  for (const DatasetId id : AllDatasets()) {
    const TemporalGraph graph = LoadBenchDataset(id, args);
    const PairSequenceMatrix matrix =
        CollectPairSequenceMatrix(graph, options);
    std::printf("--- %s (total %llu sequences) ---\n", DatasetName(id),
                static_cast<unsigned long long>(matrix.total));
    std::printf("%s\n", RenderPairSequenceHeatMap(matrix).c_str());

    for (int a = 0; a < kNumEventPairTypes; ++a) {
      for (int b = 0; b < kNumEventPairTypes; ++b) {
        const auto first = static_cast<EventPairType>(a);
        const auto second = static_cast<EventPairType>(b);
        csv.WriteRow({DatasetName(id),
                      std::string(1, EventPairLetter(first)),
                      std::string(1, EventPairLetter(second)),
                      std::to_string(matrix.cell(first, second)),
                      std::to_string(matrix.LogIntensity(first, second))});
      }
    }
  }
  std::printf(
      "Paper shape: repetition/ping-pong sequences dominate message "
      "networks; repetition/out-burst dominate calls and email; "
      "weakly-connected sequences are rare everywhere; convey/in-burst "
      "compatibilities are asymmetric (I->C common, C->I rare).\n");
  WriteBenchResult(args, "fig6_pair_sequences", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
