// Reproduces Figure 4 (+ appendix Figure 9): the behaviour of intermediate
// event occurrences for representative motifs under dC/dW sweeps. For each
// configuration we print the normalized-position histogram of the second
// (and third) events; enforcing dC regularizes the only-dW skew.

#include <cstdio>

#include "analysis/intermediate_events.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/text_table.h"

namespace tmotif {
namespace {

constexpr Timestamp kDeltaW = 3000;

EnumerationOptions ConfigFor(int num_events, double ratio) {
  EnumerationOptions o;
  o.num_events = num_events;
  o.max_nodes = num_events;
  if (ratio >= 1.0) {
    o.timing = TimingConstraints::OnlyDeltaW(kDeltaW);
  } else {
    o.timing = TimingConstraints::Both(
        static_cast<Timestamp>(ratio * kDeltaW), kDeltaW);
  }
  return o;
}

struct Panel {
  DatasetId dataset;
  const char* motif;
  double extra_scale;  // 4-event panels run smaller.
};

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  WallTimer run_timer;
  PrintBenchHeader(
      "Intermediate event behaviour",
      "Figure 4 (010102 on SMS-Copen., 011221 on FBWall, 01212303 on "
      "CollegeMsg) and Figure 9 panels",
      args);

  const Panel panels[] = {
      {DatasetId::kSmsCopenhagen, "010102", 1.0},
      {DatasetId::kFbWall, "011221", 1.0},
      {DatasetId::kCollegeMsg, "01212303", 0.5},
      {DatasetId::kCallsCopenhagen, "010102", 1.0},
      {DatasetId::kEmail, "010102", 1.0},
      {DatasetId::kBitcoinOtc, "01022123", 0.5},
  };

  CsvWriter csv(
      BenchOutputPath(args.out_dir, "fig4_intermediate_events.csv"));
  csv.WriteRow({"dataset", "motif", "config", "event_position", "bin_lo_pct",
                "count"});

  for (const Panel& panel : panels) {
    const int k = static_cast<int>(std::string(panel.motif).size()) / 2;
    BenchArgs scaled = args;
    scaled.scale_multiplier *= panel.extra_scale;
    const TemporalGraph graph = LoadBenchDataset(panel.dataset, scaled);

    const double ratios[] = {1.0, 0.66, 1.0 / (k - 1)};
    const char* names[] = {"only-dW", "dW-and-dC", "only-dC"};
    std::printf("--- %s motif %s ---\n", DatasetName(panel.dataset),
                panel.motif);
    TextTable table({"Config", "Instances", "2nd centroid", "3rd centroid"});
    for (int c = 0; c < 3; ++c) {
      const IntermediateEventProfile profile = CollectIntermediatePositions(
          graph, ConfigFor(k, ratios[c]), panel.motif, 20);
      table.AddRow().AddCell(names[c]).AddUint(profile.num_instances);
      for (int h = 0; h < 2; ++h) {
        if (h < static_cast<int>(profile.histograms.size())) {
          table.AddPercent(profile.histograms[static_cast<std::size_t>(h)]
                               .MassCentroid());
        } else {
          table.AddCell("-");
        }
      }
      for (std::size_t h = 0; h < profile.histograms.size(); ++h) {
        const Histogram& hist = profile.histograms[h];
        for (int b = 0; b < hist.num_bins(); ++b) {
          csv.WriteRow({DatasetName(panel.dataset), panel.motif, names[c],
                        std::to_string(h + 2), std::to_string(hist.bin_lo(b)),
                        std::to_string(hist.bin_count(b))});
        }
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Paper shape: under only-dW the intermediate events are skewed "
      "(centroid far from 50%%: towards the first event for repetitions, "
      "towards the last for closing ping-pongs); enforcing dC pulls the "
      "centroid back towards the middle.\n");
  WriteBenchResult(args, "fig4_intermediate_events", run_timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Run(argc, argv); }
