# Golden-output test driver, invoked by CTest as
#   cmake -DBINARY=<exe> [-DARGS="<flag>;<flag>;..."] [-DMASK_TIMING=ON]
#         -DEXPECTED=<file> -DOUTPUT=<file> -P GoldenTest.cmake
# Runs BINARY with ARGS, captures stdout to OUTPUT, and fails unless it is
# byte-identical to EXPECTED. stderr is passed through (tools print
# wall-clock throughput there, which must not break determinism).
#
# MASK_TIMING=ON rewrites OUTPUT in place before the comparison: samples of
# timing histograms — metric lines whose name contains `latency_ns`, the
# obs/ naming convention for wall-clock histograms — are replaced by a
# fixed <t> token in both the Prometheus text and the JSON-lines exporter
# formats, and the `counting.simd_dispatch_level` gauge (which reports the
# CPU the test happens to run on) is replaced by <isa>. Metric *names* and
# every deterministic counter/gauge line stay byte-exact; only the
# run-dependent durations and the machine-dependent ISA level are masked.
#
# To refresh a golden after an intentional output change, copy OUTPUT over
# EXPECTED (the failure message prints both paths; OUTPUT is already
# masked, so the copy works for MASK_TIMING goldens too).

if(NOT DEFINED BINARY OR NOT DEFINED EXPECTED OR NOT DEFINED OUTPUT)
  message(FATAL_ERROR "GoldenTest.cmake needs -DBINARY, -DEXPECTED, -DOUTPUT")
endif()

get_filename_component(_out_dir "${OUTPUT}" DIRECTORY)
file(MAKE_DIRECTORY "${_out_dir}")

if(DEFINED ARGS)
  separate_arguments(_args UNIX_COMMAND "${ARGS}")
else()
  set(_args "")
endif()

execute_process(
  COMMAND "${BINARY}" ${_args}
  OUTPUT_FILE "${OUTPUT}"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${_rc}")
endif()

if(MASK_TIMING)
  file(READ "${OUTPUT}" _content)
  # Prometheus text: `<name>_bucket{le="..."} N`, `<name>_sum N` and
  # `<name>_count N` sample lines of latency histograms.
  string(REGEX REPLACE
    "(latency_ns[_a-z]*({le=\"[^\"]+\"})?) [0-9]+"
    "\\1 <t>" _content "${_content}")
  # JSON lines: the count/sum/mean/p50/p99 tail of a latency histogram.
  string(REGEX REPLACE
    "(latency_ns\",\"type\":\"histogram\"),[^\n]*"
    "\\1,\"samples\":\"<t>\"}" _content "${_content}")
  # The detected-ISA gauge depends on the host CPU (and on
  # TMOTIF_FORCE_SCALAR), not on the code under test.
  string(REGEX REPLACE
    "(simd_dispatch_level) [0-9]+"
    "\\1 <isa>" _content "${_content}")
  string(REGEX REPLACE
    "(simd_dispatch_level\",\"type\":\"gauge\",\"value\":)[0-9]+"
    "\\1\"<isa>\"" _content "${_content}")
  file(WRITE "${OUTPUT}" "${_content}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${OUTPUT}" "${EXPECTED}"
  RESULT_VARIABLE _diff)
if(NOT _diff EQUAL 0)
  find_program(_diff_tool diff)
  if(_diff_tool)
    execute_process(COMMAND "${_diff_tool}" -u "${EXPECTED}" "${OUTPUT}"
                    OUTPUT_VARIABLE _diff_text ERROR_VARIABLE _diff_text
                    RESULT_VARIABLE _ignored)
    message(STATUS "diff -u ${EXPECTED} ${OUTPUT}:\n${_diff_text}")
  endif()
  message(FATAL_ERROR
    "stdout diverged from the pinned golden output.\n"
    "  expected: ${EXPECTED}\n"
    "  actual:   ${OUTPUT}\n"
    "If the change is intentional, refresh the golden by copying the "
    "actual file over the expected one.")
endif()
