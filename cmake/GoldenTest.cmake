# Golden-output test driver, invoked by CTest as
#   cmake -DBINARY=<exe> [-DARGS="<flag>;<flag>;..."] -DEXPECTED=<file>
#         -DOUTPUT=<file> -P GoldenTest.cmake
# Runs BINARY with ARGS, captures stdout to OUTPUT, and fails unless it is
# byte-identical to EXPECTED. stderr is passed through (tools print
# wall-clock throughput there, which must not break determinism).
#
# To refresh a golden after an intentional output change, copy OUTPUT over
# EXPECTED (the failure message prints both paths).

if(NOT DEFINED BINARY OR NOT DEFINED EXPECTED OR NOT DEFINED OUTPUT)
  message(FATAL_ERROR "GoldenTest.cmake needs -DBINARY, -DEXPECTED, -DOUTPUT")
endif()

get_filename_component(_out_dir "${OUTPUT}" DIRECTORY)
file(MAKE_DIRECTORY "${_out_dir}")

if(DEFINED ARGS)
  separate_arguments(_args UNIX_COMMAND "${ARGS}")
else()
  set(_args "")
endif()

execute_process(
  COMMAND "${BINARY}" ${_args}
  OUTPUT_FILE "${OUTPUT}"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${OUTPUT}" "${EXPECTED}"
  RESULT_VARIABLE _diff)
if(NOT _diff EQUAL 0)
  find_program(_diff_tool diff)
  if(_diff_tool)
    execute_process(COMMAND "${_diff_tool}" -u "${EXPECTED}" "${OUTPUT}"
                    OUTPUT_VARIABLE _diff_text ERROR_VARIABLE _diff_text
                    RESULT_VARIABLE _ignored)
    message(STATUS "diff -u ${EXPECTED} ${OUTPUT}:\n${_diff_text}")
  endif()
  message(FATAL_ERROR
    "stdout diverged from the pinned golden output.\n"
    "  expected: ${EXPECTED}\n"
    "  actual:   ${OUTPUT}\n"
    "If the change is intentional, refresh the golden by copying the "
    "actual file over the expected one.")
endif()
