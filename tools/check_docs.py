#!/usr/bin/env python3
"""Doc-drift check: keeps the markdown tree honest as the code moves.

Two classes of rot are caught:

  1. Broken intra-repo links — every relative markdown link (and image)
     in the repo's *.md files must resolve to an existing file.
  2. Stale CLI flags — every `--flag` that appears in a code span or
     fenced block mentioning one of the CLI tools (tmotif_count,
     tmotif_stream, bench_diff) must appear in that tool's --help output.
  3. Missing required sections — load-bearing doc sections that code or
     tests reference by topic (the fast-path dispatch table, the batch
     sink surface, the lifted store gates) must keep existing; a refactor
     that drops one fails here instead of silently orphaning the
     references.

Usage:
  tools/check_docs.py [--repo-root DIR] [--bin-dir BUILDDIR]

Without --bin-dir only the link check runs (useful before building);
CI passes the build directory so the flag check runs against the real
binaries. Exit status is nonzero on any finding.
"""

import argparse
import os
import re
import subprocess
import sys

TOOLS = ("tmotif_count", "tmotif_stream", "bench_diff")

# Sections other artifacts depend on staying put, keyed by doc path
# (relative to the repo root). Values are literal substrings that must
# appear in the file — section headings plus the contract names the code
# comments point readers at.
REQUIRED_SECTIONS = {
    "docs/PERFORMANCE.md": (
        "## Specialized k ≤ 3 counting fast paths (core/fast_paths/)",
        "### The dispatch table",
        "batch sink surface",
        "window-difference identity",
        "fastpath_<workload>_instances_per_sec",
        "## Node-space sharded counting (algorithms/sharded.h)",
        "scaling_efficiency",
    ),
    "docs/ARCHITECTURE.md": (
        "core/fast_paths",
        "EmitBatch",
        "## Sharded counting (algorithms/sharded.h)",
        "The boundary halo.",
        "The ownership rule.",
    ),
    "docs/STREAMING.md": (
        "#### Lifted store gates: order predicates and k = 1",
        "boundary revalidation",
        "store_order_rechecks",
    ),
    "docs/RESILIENCE.md": (
        "## Checkpoint format",
        "## Degradation state machine",
        "## Fault-point catalog",
        "stream.store_mode",
        "checkpoint.short_write",
    ),
    "docs/OBSERVABILITY.md": (
        "## Metric catalog",
        "## Phase tracing",
        "## Exporters",
        "## Overhead budget (TMOTIF_NO_TELEMETRY)",
        "latency_ns",
        "MASK_TIMING",
    ),
}

# Relative markdown links/images: [text](target) where target is not a URL
# or a pure intra-page anchor.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")
FENCE_RE = re.compile(r"^```")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")


def find_markdown_files(root):
    out = []
    skip_dirs = {".git", "build", ".github"}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in skip_dirs
                       and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def check_links(md_files, root, errors):
    for path in md_files:
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://", "mailto:",
                                          "#")):
                        continue
                    resolved = os.path.normpath(
                        os.path.join(base, target.split("#")[0]))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"broken link -> {target}")


def tool_help(bin_dir, tool, errors):
    binary = os.path.join(bin_dir, tool)
    if not os.path.exists(binary):
        errors.append(f"flag check: binary not found: {binary} "
                      f"(build the tools first)")
        return None
    try:
        proc = subprocess.run([binary, "--help"], capture_output=True,
                              text=True, timeout=30)
    except OSError as e:
        errors.append(f"flag check: cannot run {binary}: {e}")
        return None
    return proc.stdout + proc.stderr


def iter_code_snippets(path):
    """Yields (lineno, text) for fenced-block lines and inline code spans."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                yield lineno, line
            else:
                for span in INLINE_CODE_RE.findall(line):
                    yield lineno, span


def check_flags(md_files, root, bin_dir, errors):
    helps = {}
    for tool in TOOLS:
        text = tool_help(bin_dir, tool, errors)
        if text is not None:
            helps[tool] = text
    if not helps:
        return
    for path in md_files:
        current_tool = None  # Carried across continuation lines ending in \.
        carry = False
        for lineno, snippet in iter_code_snippets(path):
            mentioned = [t for t in TOOLS if t in snippet]
            if mentioned:
                current_tool = mentioned[0]
            elif not carry:
                current_tool = None
            carry = snippet.rstrip().endswith("\\")
            if current_tool is None or current_tool not in helps:
                continue
            for flag in FLAG_RE.findall(snippet):
                if flag not in helps[current_tool]:
                    errors.append(
                        f"{os.path.relpath(path, root)}:{lineno}: flag "
                        f"{flag} not in `{current_tool} --help` output")


def check_required_sections(root, errors):
    for rel_path, markers in REQUIRED_SECTIONS.items():
        path = os.path.join(root, rel_path)
        if not os.path.exists(path):
            errors.append(f"{rel_path}: required doc is missing")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for marker in markers:
            if marker not in text:
                errors.append(
                    f"{rel_path}: required section marker not found: "
                    f"{marker!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--bin-dir", default=None,
                        help="build directory holding the tool binaries; "
                             "omit to skip the CLI-flag check")
    args = parser.parse_args()

    md_files = find_markdown_files(args.repo_root)
    if not md_files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    errors = []
    check_links(md_files, args.repo_root, errors)
    check_required_sections(args.repo_root, errors)
    if args.bin_dir is not None:
        check_flags(md_files, args.repo_root, args.bin_dir, errors)
    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        print(f"check_docs: {len(errors)} finding(s) across "
              f"{len(md_files)} markdown files", file=sys.stderr)
        return 1
    scope = ("links + sections + CLI flags" if args.bin_dir
             else "links + sections")
    print(f"check_docs: OK ({scope}; {len(md_files)} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
