// tmotif_stream: replays a temporal edge list as a time-ordered event
// stream and maintains sliding-window motif counts incrementally
// (stream/streaming_counter.h) instead of recounting per batch.
//
//   tmotif_stream --input=events.txt --model=paranjape --k=3 --dw=3600
//                 --window-events=4096 --batch=256 --report-every=8
//   tmotif_stream --input=events.txt --model=kovanen --k=3 --dc=1500
//                 --window-seconds=86400
//
// Snapshot reports and the final summary go to stdout (deterministic, so
// the golden tests can pin them); wall-clock throughput goes to stderr.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "core/models/model_info.h"
#include "graph/graph_io.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/streaming_counter.h"

namespace tmotif {
namespace {

struct CliArgs {
  std::string input;
  std::string model = "custom";  // kovanen|song|hulovatyy|paranjape|custom.
  int k = 3;
  int max_nodes = 0;  // 0 = k.
  long long dc = -1;
  long long dw = -1;
  std::string induced = "none";  // none|static|window.
  bool cdg = false;
  bool consecutive = false;
  long long window_events = -1;
  long long window_seconds = -1;
  bool window_events_set = false;
  bool window_seconds_set = false;
  long long lateness = 0;
  bool scoped_recounts = false;
  int batch = 256;
  int report_every = 0;  // Batches between snapshot reports; 0 = final only.
  int top = 10;
  int threads = 1;
  bool compact_ids = true;
  std::string metrics_out;            // Empty = no metrics dump.
  std::string metrics_format = "prom";  // prom|jsonl.
  int metrics_interval = 0;  // Batches between metric dumps; 0 = final only.
  std::string trace_out;     // Empty = tracing off.
  std::string checkpoint_out;  // Empty = no checkpoints.
  int checkpoint_interval = 0;  // Batches between checkpoints; 0 = final only.
  std::string restore;          // Empty = start fresh.
  long long store_budget = 0;   // Instance-store byte budget; 0 = unlimited.
  long long store_compaction_slack = -1;  // -1 = library default.
};

void Usage(const char* argv0, std::FILE* out = stderr) {
  std::fprintf(
      out,
      "usage: %s --input=FILE [options]\n"
      "  --model=NAME        kovanen|song|hulovatyy|paranjape|custom "
      "(default custom)\n"
      "  --k=N               events per motif (default 3)\n"
      "  --max-nodes=N       node cap (default k)\n"
      "  --dc=SECONDS        consecutive-gap bound\n"
      "  --dw=SECONDS        whole-motif window bound\n"
      "  --induced=KIND      none|static|window (custom model only)\n"
      "  --cdg               constrained-dynamic-graphlet restriction\n"
      "  --consecutive       Kovanen consecutive-events restriction\n"
      "  --window-events=N   count-based sliding window capacity\n"
      "  --window-seconds=S  time-based sliding window horizon\n"
      "                      (exactly one; default --window-events=4096)\n"
      "  --lateness=SECONDS  accept out-of-order events up to this far\n"
      "                      behind the stream clock (default 0 = drop)\n"
      "  --scoped-recounts   static-flip verification/debug mode: scoped\n"
      "                      recounts instead of the live-instance store\n"
      "  --batch=N           events per ingested batch (default 256)\n"
      "  --report-every=N    print a snapshot every N batches (0 = final "
      "only)\n"
      "  --top=N             motif rows per report (default 10, 0 = all)\n"
      "  --threads=N         delta-ingestion shards (default 1)\n"
      "  --raw-ids           node ids are already dense (skip remapping)\n"
      "  --metrics-out=FILE  dump a registry snapshot at exit "
      "('-' = stdout)\n"
      "  --metrics-format=F  prom|jsonl exporter format (default prom)\n"
      "  --metrics-interval=N  also dump every N batches (0 = final only)\n"
      "  --trace-out=FILE    record phase spans; dump chrome://tracing "
      "JSON ('-' = stdout)\n"
      "  --checkpoint-out=FILE  write a durable checkpoint here (atomic\n"
      "                      write + rename; see docs/RESILIENCE.md)\n"
      "  --checkpoint-interval=N  also checkpoint every N batches "
      "(0 = final only)\n"
      "  --restore=FILE      restore a checkpoint before replaying; the\n"
      "                      replay resumes after the checkpointed events\n"
      "  --store-budget=BYTES  instance-store memory budget; over it the\n"
      "                      store degrades gracefully (0 = unlimited)\n"
      "  --store-compaction-slack=N  dead bucket slots tolerated before\n"
      "                      the store compacts (default 64)\n",
      argv0);
}

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--input=")) args->input = v;
    else if (const char* v = value("--model=")) args->model = v;
    else if (const char* v = value("--k=")) args->k = std::atoi(v);
    else if (const char* v = value("--max-nodes=")) args->max_nodes = std::atoi(v);
    else if (const char* v = value("--dc=")) args->dc = std::atoll(v);
    else if (const char* v = value("--dw=")) args->dw = std::atoll(v);
    else if (const char* v = value("--induced=")) args->induced = v;
    else if (std::strcmp(a, "--cdg") == 0) args->cdg = true;
    else if (std::strcmp(a, "--consecutive") == 0) args->consecutive = true;
    else if (const char* v = value("--window-events=")) {
      args->window_events = std::atoll(v);
      args->window_events_set = true;
    }
    else if (const char* v = value("--window-seconds=")) {
      args->window_seconds = std::atoll(v);
      args->window_seconds_set = true;
    }
    else if (const char* v = value("--lateness=")) args->lateness = std::atoll(v);
    else if (std::strcmp(a, "--scoped-recounts") == 0) args->scoped_recounts = true;
    else if (const char* v = value("--batch=")) args->batch = std::atoi(v);
    else if (const char* v = value("--report-every=")) args->report_every = std::atoi(v);
    else if (const char* v = value("--top=")) args->top = std::atoi(v);
    else if (const char* v = value("--threads=")) args->threads = std::atoi(v);
    else if (std::strcmp(a, "--raw-ids") == 0) args->compact_ids = false;
    else if (const char* v = value("--metrics-out=")) args->metrics_out = v;
    else if (const char* v = value("--metrics-format=")) args->metrics_format = v;
    else if (const char* v = value("--metrics-interval=")) args->metrics_interval = std::atoi(v);
    else if (const char* v = value("--trace-out=")) args->trace_out = v;
    else if (const char* v = value("--checkpoint-out=")) args->checkpoint_out = v;
    else if (const char* v = value("--checkpoint-interval=")) args->checkpoint_interval = std::atoi(v);
    else if (const char* v = value("--restore=")) args->restore = v;
    else if (const char* v = value("--store-budget=")) args->store_budget = std::atoll(v);
    else if (const char* v = value("--store-compaction-slack=")) args->store_compaction_slack = std::atoll(v);
    else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      Usage(argv[0], stdout);
      std::exit(0);
    }
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  if (args->input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    return false;
  }
  if (args->k < 1 || args->k > 8) {
    std::fprintf(stderr, "--k must be in [1, 8]\n");
    return false;
  }
  if (args->max_nodes != 0 &&
      (args->max_nodes < 2 || args->max_nodes > args->k + 1)) {
    std::fprintf(stderr, "--max-nodes must be in [2, k+1]\n");
    return false;
  }
  if (args->window_events_set && args->window_seconds_set) {
    std::fprintf(stderr,
                 "--window-events and --window-seconds are exclusive\n");
    return false;
  }
  if (args->window_events_set && args->window_events < 1) {
    std::fprintf(stderr, "--window-events must be >= 1\n");
    return false;
  }
  if (args->window_seconds_set && args->window_seconds < 1) {
    std::fprintf(stderr, "--window-seconds must be >= 1\n");
    return false;
  }
  if (args->lateness < 0) {
    std::fprintf(stderr, "--lateness must be >= 0\n");
    return false;
  }
  if (args->batch < 1) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return false;
  }
  if (args->metrics_format != "prom" && args->metrics_format != "jsonl") {
    std::fprintf(stderr, "--metrics-format must be prom or jsonl\n");
    return false;
  }
  if (args->metrics_interval < 0) {
    std::fprintf(stderr, "--metrics-interval must be >= 0\n");
    return false;
  }
  if (args->metrics_interval > 0 && args->metrics_out.empty()) {
    std::fprintf(stderr, "--metrics-interval needs --metrics-out\n");
    return false;
  }
  if (args->checkpoint_interval < 0) {
    std::fprintf(stderr, "--checkpoint-interval must be >= 0\n");
    return false;
  }
  if (args->checkpoint_interval > 0 && args->checkpoint_out.empty()) {
    std::fprintf(stderr, "--checkpoint-interval needs --checkpoint-out\n");
    return false;
  }
  if (args->store_budget < 0) {
    std::fprintf(stderr, "--store-budget must be >= 0\n");
    return false;
  }
  return true;
}

/// Writes one registry snapshot to `out` in the configured format.
void DumpMetrics(const CliArgs& args, std::FILE* out) {
  const obs::MetricsSnapshot snap = obs::GlobalMetrics().Snapshot();
  const std::string text = args.metrics_format == "jsonl"
                               ? obs::ToJsonLines(snap)
                               : obs::ToPrometheusText(snap);
  std::fwrite(text.data(), 1, text.size(), out);
}

bool BuildOptions(const CliArgs& args, EnumerationOptions* options) {
  const int max_nodes = args.max_nodes > 0 ? args.max_nodes : args.k;
  if (args.model != "custom") {
    ModelId model;
    if (args.model == "kovanen") model = ModelId::kKovanen;
    else if (args.model == "song") model = ModelId::kSong;
    else if (args.model == "hulovatyy") model = ModelId::kHulovatyy;
    else if (args.model == "paranjape") model = ModelId::kParanjape;
    else {
      std::fprintf(stderr, "unknown model: %s\n", args.model.c_str());
      return false;
    }
    const ModelAspects aspects = GetModelAspects(model);
    if (aspects.uses_delta_c && args.dc < 0) {
      std::fprintf(stderr, "%s requires --dc\n", aspects.name);
      return false;
    }
    if (aspects.uses_delta_w && args.dw < 0) {
      std::fprintf(stderr, "%s requires --dw\n", aspects.name);
      return false;
    }
    *options = OptionsForModel(model, args.k, max_nodes,
                               std::max<long long>(args.dc, 0),
                               std::max<long long>(args.dw, 0));
    return true;
  }
  options->num_events = args.k;
  options->max_nodes = max_nodes;
  if (args.dc >= 0) options->timing.delta_c = args.dc;
  if (args.dw >= 0) options->timing.delta_w = args.dw;
  options->cdg_restriction = args.cdg;
  options->consecutive_events_restriction = args.consecutive;
  if (args.induced == "none") {
    options->inducedness = Inducedness::kNone;
  } else if (args.induced == "static") {
    options->inducedness = Inducedness::kStatic;
  } else if (args.induced == "window") {
    options->inducedness = Inducedness::kTemporalWindow;
  } else {
    std::fprintf(stderr, "unknown --induced kind: %s\n", args.induced.c_str());
    return false;
  }
  return true;
}

void PrintSnapshot(const StreamingMotifCounter& counter, int top) {
  std::printf("  window: %zu events spanning %llds (%lld..%lld), %llu "
              "instances across %zu motif types\n",
              counter.window_size(),
              static_cast<long long>(counter.window_max_time() -
                                     counter.window_min_time()),
              static_cast<long long>(counter.window_min_time()),
              static_cast<long long>(counter.window_max_time()),
              static_cast<unsigned long long>(counter.total()),
              counter.counts().num_codes());
  if (counter.total() == 0) return;
  std::printf("%s", RenderMotifCounts(
                        counter.counts(),
                        top <= 0 ? 0 : static_cast<std::size_t>(top))
                        .c_str());
}

int Main(int argc, char** argv) {
  CliArgs args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  StreamConfig config;
  if (!BuildOptions(args, &config.options)) return 2;
  if (args.window_seconds_set) {
    config.window = WindowPolicy::TimeBased(args.window_seconds);
  } else {
    config.window = WindowPolicy::CountBased(
        args.window_events_set ? args.window_events : 4096);
  }
  config.num_threads = std::max(args.threads, 1);
  config.lateness = args.lateness;
  if (args.scoped_recounts) {
    config.static_flips = StaticFlipStrategy::kScopedRecount;
  }
  config.store_budget_bytes = static_cast<std::size_t>(args.store_budget);
  if (args.store_compaction_slack >= 0) {
    config.store_compaction_slack =
        static_cast<std::size_t>(args.store_compaction_slack);
  }

  EdgeListOptions load_options;
  load_options.compact_node_ids = args.compact_ids;
  load_options.keep_arrival_order = true;
  std::string load_error;
  const auto loaded = LoadEdgeList(args.input, load_options, &load_error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", load_error.c_str());
    return 1;
  }
  for (const EdgeListError& e : loaded->errors) {
    std::fprintf(stderr, "warning: %s:%zu: %s\n", args.input.c_str(), e.line,
                 e.message.c_str());
  }
  if (loaded->num_bad_lines > loaded->errors.size()) {
    std::fprintf(stderr, "warning: ... and %zu more malformed lines\n",
                 loaded->num_bad_lines - loaded->errors.size());
  }
  if (loaded->num_bad_lines > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 loaded->num_bad_lines);
  }
  // Replay in file (arrival) order: for sorted files this is the canonical
  // stream order, and for unordered feeds it is exactly the out-of-order
  // delivery the --lateness horizon is for.
  const std::vector<Event>& events = loaded->arrival_events;

  std::printf("%s: replaying %zu events (batch %d, window %s)\n",
              args.input.c_str(), events.size(), args.batch,
              config.window.ToString().c_str());
  std::printf("config: %d-event motifs, <=%d nodes, %s%s%s%s\n\n",
              config.options.num_events, config.options.max_nodes,
              config.options.timing.ToString().c_str(),
              config.options.consecutive_events_restriction ? ", consecutive"
                                                            : "",
              config.options.cdg_restriction ? ", cdg" : "",
              config.options.inducedness == Inducedness::kNone
                  ? ""
                  : (config.options.inducedness == Inducedness::kStatic
                         ? ", static-induced"
                         : ", window-induced"));

  if (!args.trace_out.empty()) obs::TraceRecorder::Global().Enable();
  std::FILE* metrics_file = nullptr;
  if (!args.metrics_out.empty()) {
    metrics_file = args.metrics_out == "-"
                       ? stdout
                       : std::fopen(args.metrics_out.c_str(), "w");
    if (metrics_file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      return 1;
    }
  }

  StreamingMotifCounter counter(config);
  std::size_t resume_offset = 0;
  if (!args.restore.empty()) {
    const CheckpointResult restored = RestoreCheckpoint(args.restore, &counter);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot restore %s: %s: %s\n",
                   args.restore.c_str(),
                   CheckpointStatusName(restored.status),
                   restored.message.c_str());
      return 1;
    }
    // The checkpoint records how many replay events it had consumed; skip
    // them so the resumed run continues exactly where the writer stopped.
    resume_offset = std::min<std::size_t>(
        static_cast<std::size_t>(counter.stats().events_ingested),
        events.size());
    std::printf("restored %s: %zu window events, %llu counted instances; "
                "resuming at event %zu\n",
                args.restore.c_str(), counter.window_size(),
                static_cast<unsigned long long>(counter.total()),
                resume_offset);
  }
  const auto start = std::chrono::steady_clock::now();
  std::size_t batch_index = 0;
  for (std::size_t begin = resume_offset; begin < events.size();
       begin += static_cast<std::size_t>(args.batch)) {
    const std::size_t end =
        std::min(events.size(), begin + static_cast<std::size_t>(args.batch));
    counter.Ingest(std::vector<Event>(
        events.begin() + static_cast<std::ptrdiff_t>(begin),
        events.begin() + static_cast<std::ptrdiff_t>(end)));
    ++batch_index;
    if (args.report_every > 0 &&
        batch_index % static_cast<std::size_t>(args.report_every) == 0) {
      std::printf("[batch %zu, %zu events in]\n", batch_index, end);
      PrintSnapshot(counter, args.top);
      std::printf("\n");
    }
    if (args.metrics_interval > 0 && metrics_file != nullptr &&
        batch_index % static_cast<std::size_t>(args.metrics_interval) == 0) {
      if (args.metrics_format == "jsonl") {
        std::fprintf(metrics_file,
                     "{\"metric\":\"snapshot.batch\",\"type\":\"gauge\","
                     "\"value\":%zu}\n",
                     batch_index);
      } else {
        std::fprintf(metrics_file, "# snapshot after batch %zu\n",
                     batch_index);
      }
      DumpMetrics(args, metrics_file);
    }
    if (args.checkpoint_interval > 0 &&
        batch_index % static_cast<std::size_t>(args.checkpoint_interval) ==
            0) {
      const CheckpointResult written =
          WriteCheckpoint(counter, args.checkpoint_out);
      if (!written.ok()) {
        // A failed periodic checkpoint must not kill the stream: the
        // previous checkpoint (if any) is still intact under the final
        // name, so warn and keep ingesting.
        std::fprintf(stderr, "warning: checkpoint failed: %s: %s\n",
                     CheckpointStatusName(written.status),
                     written.message.c_str());
      }
    }
  }
  if (!args.checkpoint_out.empty()) {
    const CheckpointResult written =
        WriteCheckpoint(counter, args.checkpoint_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s: %s\n",
                   args.checkpoint_out.c_str(),
                   CheckpointStatusName(written.status),
                   written.message.c_str());
      return 1;
    }
  }

  const IngestStats& stats = counter.stats();
  std::printf("final state after %llu batches\n",
              static_cast<unsigned long long>(stats.batches));
  PrintSnapshot(counter, args.top);
  std::printf(
      "\nstream summary: %llu ingested (%llu never entered), %llu evicted; "
      "%llu instances added, %llu retracted; %llu tie corrections, %llu "
      "window recounts (%llu static-inducedness fallbacks)\n",
      static_cast<unsigned long long>(stats.events_ingested),
      static_cast<unsigned long long>(stats.events_dropped),
      static_cast<unsigned long long>(stats.events_evicted),
      static_cast<unsigned long long>(stats.instances_added),
      static_cast<unsigned long long>(stats.instances_retracted),
      static_cast<unsigned long long>(stats.tie_corrections),
      static_cast<unsigned long long>(stats.full_recounts),
      static_cast<unsigned long long>(stats.static_fallbacks));
  if (counter.store_active()) {
    std::printf(
        "instance store: %zu live candidates (~%llu bytes resident); %llu "
        "flip batches touched %llu entries (%llu admitted, %llu retired)\n",
        counter.store_size(),
        static_cast<unsigned long long>(counter.store_approx_bytes()),
        static_cast<unsigned long long>(stats.store_flip_batches),
        static_cast<unsigned long long>(stats.store_entries_touched),
        static_cast<unsigned long long>(stats.store_admitted),
        static_cast<unsigned long long>(stats.store_retired));
  }
  {
    const unsigned long long transitions =
        stats.store_demotions_counted + stats.store_demotions_recount +
        stats.store_promotions_counted + stats.store_promotions_full;
    if (transitions > 0) {
      const char* mode_name =
          counter.store_mode() == StoreMode::kFull
              ? "full"
              : (counter.store_mode() == StoreMode::kCountedOnly
                     ? "counted-only"
                     : "scoped-recount");
      std::printf(
          "store budget: %llu-byte cap, ended in %s mode; %llu demotions "
          "(%llu to counted-only, %llu to scoped-recount), %llu promotions\n",
          static_cast<unsigned long long>(config.store_budget_bytes),
          mode_name,
          static_cast<unsigned long long>(stats.store_demotions_counted +
                                          stats.store_demotions_recount),
          static_cast<unsigned long long>(stats.store_demotions_counted),
          static_cast<unsigned long long>(stats.store_demotions_recount),
          static_cast<unsigned long long>(stats.store_promotions_counted +
                                          stats.store_promotions_full));
    }
  }
  if (stats.late_events + stats.late_dropped > 0) {
    std::printf(
        "late events: %llu spliced (%llu delta batches, %llu recounts), "
        "%llu dropped beyond the %llds horizon\n",
        static_cast<unsigned long long>(stats.late_events),
        static_cast<unsigned long long>(stats.late_splices),
        static_cast<unsigned long long>(stats.late_recounts),
        static_cast<unsigned long long>(stats.late_dropped),
        static_cast<long long>(config.lateness));
  }
  if (metrics_file != nullptr) {
    DumpMetrics(args, metrics_file);
    if (metrics_file != stdout) std::fclose(metrics_file);
  }
  if (!args.trace_out.empty()) {
    if (args.trace_out == "-") {
      std::ostringstream trace_json;
      obs::TraceRecorder::Global().WriteJson(trace_json);
      std::fputs(trace_json.str().c_str(), stdout);
    } else {
      std::ofstream trace_file(args.trace_out);
      if (!trace_file) {
        std::fprintf(stderr, "cannot write %s\n", args.trace_out.c_str());
        return 1;
      }
      obs::TraceRecorder::Global().WriteJson(trace_file);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (seconds > 0 && !events.empty()) {
    std::fprintf(stderr, "replayed %zu events in %.3fs (%.0f events/s)\n",
                 events.size(), seconds,
                 static_cast<double>(events.size()) / seconds);
  }
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Main(argc, argv); }
