#!/usr/bin/env bash
# Builds and runs every bench binary on a small preset dataset so the perf
# trajectory (BENCH_*.json records) can accumulate across PRs.
#
# Usage: tools/run_benches.sh [build_dir] [scale] [out_dir]
#   build_dir  CMake build directory            (default: build)
#   scale      --scale multiplier per bench     (default: 0.05)
#   out_dir    where BENCH_*.json + CSVs land   (default: <build_dir>/bench_out)
#
# Every paper-artefact bench accepts --scale/--seed/--out (see
# bench/bench_util.h) and writes one BENCH_<name>.json timing record.
# bench_perf_counting is a Google Benchmark binary and is driven through
# --benchmark_* flags instead; it is skipped when it was not built (the
# system Google Benchmark package is optional).
#
# TMOTIF_BENCH_DRY_RUN=1 skips the build and prints "would run <name>" for
# every bench the glob enumerates without executing any of them — the CTest
# smoke test uses it to pin the enumeration (new bench binaries must show
# up; helper binaries and stray bench_*.json/csv files must stay excluded).

set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${2:-0.05}"
OUT_DIR="${3:-${BUILD_DIR}/bench_out}"
SEED="${BENCH_SEED:-42}"
DRY_RUN="${TMOTIF_BENCH_DRY_RUN:-0}"

if [ "${DRY_RUN}" = "0" ]; then
  if [ ! -d "${BUILD_DIR}" ]; then
    cmake -B "${BUILD_DIR}" -S .
  fi
  cmake --build "${BUILD_DIR}" --target bench -j "$(nproc)"
fi

mkdir -p "${OUT_DIR}"
failures=0
ran=0

for bin in "${BUILD_DIR}"/bench_*; do
  # Regular executables only: the default OUT_DIR (<build>/bench_out) and
  # stray bench_*.log/csv files match the glob too.
  [ -f "${bin}" ] && [ -x "${bin}" ] || continue
  name="$(basename "${bin}")"
  case "${name}" in
    *.json | *.csv) continue ;;
    bench_diff) continue ;;  # The record-comparison tool, not a bench.
    # The no-telemetry half of bench_obs_overhead: spawned by the
    # instrumented binary itself, never run standalone.
    bench_obs_overhead_baseline) continue ;;
    bench_perf_counting)
      if [ "${DRY_RUN}" != "0" ]; then
        echo "would run ${name}"
        ran=$((ran + 1))
        continue
      fi
      # Runs the Google Benchmark suite AND writes the
      # BENCH_counting_throughput.json trajectory record (the binary
      # splits --scale/--seed/--out from the --benchmark_* flags itself).
      echo "== ${name} (google-benchmark, min_time 0.01s)"
      if "${bin}" --benchmark_min_time=0.01 \
          --benchmark_out="${OUT_DIR}/BENCH_perf_counting.json" \
          --benchmark_out_format=json \
          "--scale=${SCALE}" "--seed=${SEED}" "--out=${OUT_DIR}" \
          > "${OUT_DIR}/${name}.log" 2>&1; then
        ran=$((ran + 1))
      else
        echo "   FAILED (see ${OUT_DIR}/${name}.log)"
        failures=$((failures + 1))
      fi
      ;;
    *)
      if [ "${DRY_RUN}" != "0" ]; then
        echo "would run ${name}"
        ran=$((ran + 1))
        continue
      fi
      echo "== ${name} (scale ${SCALE}, seed ${SEED})"
      if "${bin}" "--scale=${SCALE}" "--seed=${SEED}" "--out=${OUT_DIR}" \
          > "${OUT_DIR}/${name}.log" 2>&1; then
        ran=$((ran + 1))
      else
        echo "   FAILED (see ${OUT_DIR}/${name}.log)"
        failures=$((failures + 1))
      fi
      ;;
  esac
done

echo
echo "Ran ${ran} benches, ${failures} failures. Timing records:"
for record in "${OUT_DIR}"/BENCH_*.json; do
  [ -e "${record}" ] || continue
  echo "  ${record}"
done
exit "$((failures > 0 ? 1 : 0))"
