// tmotif_count: command-line temporal motif counter.
//
// Counts k-event temporal motifs in a whitespace-separated edge list
// ("src dst time [duration [label]]" per line) under any of the four
// published models or a custom configuration.
//
//   tmotif_count --input=events.txt --model=paranjape --k=3 --dw=3600
//   tmotif_count --input=events.txt --model=kovanen --k=3 --dc=1500
//   tmotif_count --input=events.txt --k=3 --dc=2000 --dw=3000
//                --induced=static --cdg --top=20 --threads=4   (one line)
//
// Prints a ranked count table and optionally writes a CSV.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algorithms/parallel.h"
#include "algorithms/sharded.h"
#include "analysis/report.h"
#include "common/csv.h"
#include "core/models/model_info.h"
#include "core/simd/dispatch.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "obs/export.h"

namespace tmotif {
namespace {

struct CliArgs {
  std::string input;
  std::string model = "custom";  // kovanen|song|hulovatyy|paranjape|custom.
  int k = 3;
  int max_nodes = 0;  // 0 = k.
  long long dc = -1;
  long long dw = -1;
  std::string induced = "none";  // none|static|window.
  bool cdg = false;
  bool consecutive = false;
  int top = 25;
  int threads = 1;
  int shards = 1;
  std::string csv_out;
  bool compact_ids = true;
  std::string metrics_out;  // Empty = no metrics dump.
};

void Usage(const char* argv0, std::FILE* out = stderr) {
  std::fprintf(
      out,
      "usage: %s --input=FILE [options]\n"
      "  --model=NAME     kovanen|song|hulovatyy|paranjape|custom "
      "(default custom)\n"
      "  --k=N            events per motif (default 3)\n"
      "  --max-nodes=N    node cap (default k)\n"
      "  --dc=SECONDS     consecutive-gap bound\n"
      "  --dw=SECONDS     whole-motif window bound\n"
      "  --induced=KIND   none|static|window (custom model only)\n"
      "  --cdg            constrained-dynamic-graphlet restriction\n"
      "  --consecutive    Kovanen consecutive-events restriction\n"
      "  --top=N          rows to print (default 25, 0 = all)\n"
      "  --threads=N      parallel counting over event ranges (default 1)\n"
      "  --shards=N       node-space sharded counting: partition nodes by\n"
      "                   hash, count per-shard sub-graphs with a boundary\n"
      "                   halo, merge (exact; default 1 = off)\n"
      "  --csv=FILE       also write full counts as CSV\n"
      "  --raw-ids        node ids are already dense (skip remapping)\n"
      "  --metrics-out=FILE  dump a Prometheus-text metrics snapshot at "
      "exit ('-' = stdout)\n",
      argv0);
}

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--input=")) args->input = v;
    else if (const char* v = value("--model=")) args->model = v;
    else if (const char* v = value("--k=")) args->k = std::atoi(v);
    else if (const char* v = value("--max-nodes=")) args->max_nodes = std::atoi(v);
    else if (const char* v = value("--dc=")) args->dc = std::atoll(v);
    else if (const char* v = value("--dw=")) args->dw = std::atoll(v);
    else if (const char* v = value("--induced=")) args->induced = v;
    else if (std::strcmp(a, "--cdg") == 0) args->cdg = true;
    else if (std::strcmp(a, "--consecutive") == 0) args->consecutive = true;
    else if (const char* v = value("--top=")) args->top = std::atoi(v);
    else if (const char* v = value("--threads=")) args->threads = std::atoi(v);
    else if (const char* v = value("--shards=")) args->shards = std::atoi(v);
    else if (const char* v = value("--csv=")) args->csv_out = v;
    else if (std::strcmp(a, "--raw-ids") == 0) args->compact_ids = false;
    else if (const char* v = value("--metrics-out=")) args->metrics_out = v;
    else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      Usage(argv[0], stdout);
      std::exit(0);
    }
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  if (args->input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    return false;
  }
  if (args->k < 1 || args->k > 8) {
    std::fprintf(stderr, "--k must be in [1, 8]\n");
    return false;
  }
  if (args->max_nodes != 0 &&
      (args->max_nodes < 2 || args->max_nodes > args->k + 1)) {
    std::fprintf(stderr, "--max-nodes must be in [2, k+1]\n");
    return false;
  }
  return true;
}

bool BuildOptions(const CliArgs& args, EnumerationOptions* options) {
  const int max_nodes = args.max_nodes > 0 ? args.max_nodes : args.k;
  if (args.model != "custom") {
    ModelId model;
    if (args.model == "kovanen") model = ModelId::kKovanen;
    else if (args.model == "song") model = ModelId::kSong;
    else if (args.model == "hulovatyy") model = ModelId::kHulovatyy;
    else if (args.model == "paranjape") model = ModelId::kParanjape;
    else {
      std::fprintf(stderr, "unknown model: %s\n", args.model.c_str());
      return false;
    }
    const ModelAspects aspects = GetModelAspects(model);
    if (aspects.uses_delta_c && args.dc < 0) {
      std::fprintf(stderr, "%s requires --dc\n", aspects.name);
      return false;
    }
    if (aspects.uses_delta_w && args.dw < 0) {
      std::fprintf(stderr, "%s requires --dw\n", aspects.name);
      return false;
    }
    *options = OptionsForModel(model, args.k, max_nodes,
                               std::max<long long>(args.dc, 0),
                               std::max<long long>(args.dw, 0));
    return true;
  }
  options->num_events = args.k;
  options->max_nodes = max_nodes;
  if (args.dc >= 0) options->timing.delta_c = args.dc;
  if (args.dw >= 0) options->timing.delta_w = args.dw;
  options->cdg_restriction = args.cdg;
  options->consecutive_events_restriction = args.consecutive;
  if (args.induced == "none") {
    options->inducedness = Inducedness::kNone;
  } else if (args.induced == "static") {
    options->inducedness = Inducedness::kStatic;
  } else if (args.induced == "window") {
    options->inducedness = Inducedness::kTemporalWindow;
  } else {
    std::fprintf(stderr, "unknown --induced kind: %s\n",
                 args.induced.c_str());
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  CliArgs args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  EnumerationOptions options;
  if (!BuildOptions(args, &options)) return 2;

  EdgeListOptions load_options;
  load_options.compact_node_ids = args.compact_ids;
  std::string load_error;
  const auto loaded = LoadEdgeList(args.input, load_options, &load_error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", load_error.c_str());
    return 1;
  }
  for (const EdgeListError& e : loaded->errors) {
    std::fprintf(stderr, "warning: %s:%zu: %s\n", args.input.c_str(), e.line,
                 e.message.c_str());
  }
  if (loaded->num_bad_lines > loaded->errors.size()) {
    std::fprintf(stderr, "warning: ... and %zu more malformed lines\n",
                 loaded->num_bad_lines - loaded->errors.size());
  }
  if (loaded->num_bad_lines > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                 loaded->num_bad_lines);
  }
  const TemporalGraph& graph = loaded->graph;
  const GraphStats stats = ComputeStats(graph);
  std::printf("%s: %lld nodes, %lld events, %lld static edges, median "
              "inter-event gap %.0fs\n",
              args.input.c_str(), static_cast<long long>(stats.num_nodes),
              static_cast<long long>(stats.num_events),
              static_cast<long long>(stats.num_static_edges),
              stats.median_inter_event_time);
  std::printf("config: %d-event motifs, <=%d nodes, %s%s%s%s\n\n",
              options.num_events, options.max_nodes,
              options.timing.ToString().c_str(),
              options.consecutive_events_restriction ? ", consecutive" : "",
              options.cdg_restriction ? ", cdg" : "",
              options.inducedness == Inducedness::kNone
                  ? ""
                  : (options.inducedness == Inducedness::kStatic
                         ? ", static-induced"
                         : ", window-induced"));

  MotifCounts counts;
  if (args.shards > 1) {
    // Node-space sharding (algorithms/sharded.h): exact for any plan; the
    // hash plan spreads hubs without needing a community layout.
    const ShardedCountResult sharded = CountMotifsShardedWithStats(
        graph, options, ShardPlan::Hash(graph.num_nodes(), args.shards));
    std::printf("sharded over %d shards: %llu cross-shard instances, "
                "aggregate shard cpu %.3fs\n",
                args.shards,
                static_cast<unsigned long long>(sharded.CrossShardInstances()),
                sharded.AggregateCpuSeconds());
    counts = sharded.counts;
  } else if (args.threads > 1) {
    counts = CountMotifsParallel(graph, options, args.threads);
  } else {
    counts = CountMotifs(graph, options);
  }
  std::printf("%llu instances across %zu motif types\n\n",
              static_cast<unsigned long long>(counts.total()),
              counts.num_codes());
  std::printf("%s",
              RenderMotifCounts(counts,
                                args.top <= 0
                                    ? 0
                                    : static_cast<std::size_t>(args.top))
                  .c_str());

  if (!args.csv_out.empty()) {
    CsvWriter csv(args.csv_out);
    if (!csv.ok()) {
      std::fprintf(stderr, "cannot write %s\n", args.csv_out.c_str());
      return 1;
    }
    csv.WriteRow({"motif", "count"});
    for (const auto& [code, count] : counts.SortedByCount()) {
      csv.WriteRow({code, std::to_string(count)});
    }
    std::printf("\nfull counts written to %s\n", args.csv_out.c_str());
  }

  if (!args.metrics_out.empty()) {
    // The human-readable twin of the counting.simd_dispatch_level gauge in
    // the snapshot; stderr so "-" stdout dumps stay machine-parseable.
    std::fprintf(stderr, "counting kernels: %s dispatch\n",
                 simd::DispatchLevelName(simd::ActiveDispatchLevel()));
    const std::string text =
        obs::ToPrometheusText(obs::GlobalMetrics().Snapshot());
    std::FILE* out = args.metrics_out == "-"
                         ? stdout
                         : std::fopen(args.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), out);
    if (out != stdout) std::fclose(out);
  }
  return 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Main(argc, argv); }
