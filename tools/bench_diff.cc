// bench_diff: compares BENCH_*.json timing records (as written by
// bench_util's WriteBenchResult) against a baseline and prints a trend
// table, so the perf trajectory accumulated across PRs is actually checked
// instead of just uploaded. Exits nonzero when any bench slowed down beyond
// its threshold.
//
//   bench_diff --old=baseline_dir --new=build/bench_out
//   bench_diff --old=... --new=... --threshold=0.5 --min-seconds=0.05
//   bench_diff --old=... --new=... --threshold-for=stream_ingest=0.8
//
// The baseline directory may hold BENCH_*.json records directly (a single
// run) and/or subdirectories each holding one past run's records (a rolling
// history, as maintained by CI). With several runs per bench the gate
// compares against the per-bench *median*, which is robust to one noisy
// run on either side — the reason single-previous-run baselines needed a
// +60% threshold.
//
// --threshold-for=NAME=F overrides the relative-slowdown threshold for one
// bench (repeatable); benches not named use --threshold.
//
// Records without a top-level "seconds" field (e.g. Google Benchmark's own
// JSON from bench_perf_counting) are skipped. Benches present on only one
// side are reported but never fail the run (benches come and go across
// PRs).
//
// Besides "seconds", a fixed set of gated fields (see kGatedFields) is
// pulled out of specific records and compared as its own "bench.field" row
// with a per-field direction. Throughput fields (instances/s) are
// higher-is-better: the row regresses when the new value drops below
// median / (1 + threshold). Ratio fields like bench_obs_overhead's
// instrumented/compiled-out overhead ratios are lower-is-better, gated
// like seconds but formatted unitless. This is how the per-preset and
// fast-path instances/s fields of counting_throughput and the telemetry
// overhead ratios are gated instead of just recorded.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/text_table.h"

namespace tmotif {
namespace {

namespace fs = std::filesystem;

struct CliArgs {
  std::string old_dir;
  std::string new_dir;
  /// Allowed relative slowdown: fail when new > baseline * (1 + threshold).
  double threshold = 0.25;
  /// Records faster than this on either side are too noisy to gate on.
  double min_seconds = 0.01;
  /// Per-bench threshold overrides (--threshold-for=NAME=F).
  std::map<std::string, double> threshold_overrides;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --old=DIR --new=DIR [--threshold=F] "
               "[--min-seconds=F] [--threshold-for=NAME=F ...]\n",
               argv0);
}

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--old=")) args->old_dir = v;
    else if (const char* v = value("--new=")) args->new_dir = v;
    else if (const char* v = value("--threshold=")) args->threshold = std::atof(v);
    else if (const char* v = value("--min-seconds=")) args->min_seconds = std::atof(v);
    else if (const char* v = value("--threshold-for=")) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) {
        std::fprintf(stderr, "--threshold-for expects NAME=F, got: %s\n", v);
        return false;
      }
      args->threshold_overrides[std::string(v, eq)] = std::atof(eq + 1);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  if (args->old_dir.empty() || args->new_dir.empty()) {
    std::fprintf(stderr, "--old and --new are required\n");
    return false;
  }
  if (args->threshold < 0) {
    std::fprintf(stderr, "--threshold must be >= 0\n");
    return false;
  }
  for (const auto& [bench, threshold] : args->threshold_overrides) {
    if (threshold < 0) {
      std::fprintf(stderr, "--threshold-for=%s must be >= 0\n",
                   bench.c_str());
      return false;
    }
  }
  return true;
}

/// Extracts the number following `"key":` from a flat JSON record; nullopt
/// when the key is absent. Good enough for the records we write ourselves.
std::optional<double> ExtractNumber(const std::string& json,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  ++pos;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) {
    ++pos;
  }
  char* parse_end = nullptr;
  const double parsed = std::strtod(json.c_str() + pos, &parse_end);
  if (parse_end == json.c_str() + pos) return std::nullopt;
  return parsed;
}

/// Gated fields: each (bench, field) pair becomes its own "bench.field"
/// record when the field is present in the bench's JSON. Absent fields are
/// skipped, so baselines written before a field existed coexist with newer
/// runs (one-sided rows never fail the gate). `higher_is_better` picks the
/// regression direction: true for throughputs, false for overhead ratios.
struct GatedField {
  const char* bench;
  const char* field;
  bool higher_is_better;
};
constexpr GatedField kGatedFields[] = {
    {"counting_throughput", "instances_per_sec", true},
    {"counting_throughput", "kovanen_instances_per_sec", true},
    {"counting_throughput", "song_instances_per_sec", true},
    {"counting_throughput", "hulovatyy_instances_per_sec", true},
    {"counting_throughput", "paranjape_instances_per_sec", true},
    {"counting_throughput", "fastpath_song_instances_per_sec", true},
    {"counting_throughput", "fastpath_vanilla_2node_instances_per_sec",
     true},
    {"counting_throughput", "window_induced_instances_per_sec", true},
    {"obs_overhead", "counting_overhead_ratio", false},
    {"obs_overhead", "ingest_overhead_ratio", false},
    {"checkpoint", "checkpoint_write_mbps", true},
    {"checkpoint", "checkpoint_restore_mbps", true},
    {"checkpoint", "degraded_ingest_ratio", true},
    // Vectorized-kernel microbench: best-ISA over scalar per kernel. A
    // change that quietly devectorizes a kernel shows up as a speedup
    // collapse, a regression even though wall seconds barely move.
    {"kernel_micro", "merge_speedup", true},
    {"kernel_micro", "probe_speedup", true},
    {"kernel_micro", "distinct_speedup", true},
    {"kernel_micro", "prefilter_speedup", true},
    // Node-space sharded counting: scaling_efficiency is serial CPU over
    // aggregate per-shard CPU at 4 shards (work preservation — a halo
    // blow-up collapses it long before wall seconds move on few-core
    // runners), plus per-shard-count throughputs.
    {"sharded_scaling", "scaling_efficiency", true},
    {"sharded_scaling", "events_per_sec_shards_1", true},
    {"sharded_scaling", "events_per_sec_shards_2", true},
    {"sharded_scaling", "events_per_sec_shards_4", true},
    {"sharded_scaling", "events_per_sec_shards_all", true},
    {"sharded_scaling", "instances_per_sec_shards_1", true},
    {"sharded_scaling", "instances_per_sec_shards_2", true},
    {"sharded_scaling", "instances_per_sec_shards_4", true},
    {"sharded_scaling", "instances_per_sec_shards_all", true},
};

/// True when a record name is a gated-field row ("bench.field") rather
/// than a seconds row; gated rows are formatted unitless and exempt from
/// the min-seconds noise gate.
bool IsGatedFieldRecord(const std::string& name) {
  return name.find('.') != std::string::npos;
}

/// Regression direction of a record. Seconds rows and lower-is-better
/// gated rows regress upward; throughput rows regress downward.
bool IsHigherBetter(const std::string& name) {
  for (const GatedField& gated : kGatedFields) {
    if (name == std::string(gated.bench) + "." + gated.field) {
      return gated.higher_is_better;
    }
  }
  return false;
}

/// BENCH_<name>.json -> seconds, for every parsable record directly in
/// `dir` (subdirectories are NOT descended into here), plus one
/// "bench.field" entry per present gated throughput field.
std::map<std::string, double> LoadRecords(const std::string& dir) {
  std::map<std::string, double> records;
  if (!fs::is_directory(dir)) return records;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json" || !entry.is_regular_file()) {
      continue;
    }
    std::ifstream file(entry.path());
    std::stringstream content;
    content << file.rdbuf();
    const std::optional<double> seconds =
        ExtractNumber(content.str(), "seconds");
    if (!seconds.has_value()) continue;  // Foreign format (Google Benchmark).
    const std::string bench =
        name.substr(6, name.size() - 6 - std::strlen(".json"));
    records[bench] = *seconds;
    for (const GatedField& gated : kGatedFields) {
      if (bench != gated.bench) continue;
      const std::optional<double> value =
          ExtractNumber(content.str(), gated.field);
      if (value.has_value()) {
        records[bench + "." + gated.field] = *value;
      }
    }
  }
  return records;
}

/// Per-bench samples across every run found under `dir`: flat records are
/// one run, and each immediate subdirectory holding records is another.
std::map<std::string, std::vector<double>> LoadBaselineRuns(
    const std::string& dir) {
  std::map<std::string, std::vector<double>> samples;
  const auto absorb = [&](const std::map<std::string, double>& run) {
    for (const auto& [bench, seconds] : run) {
      samples[bench].push_back(seconds);
    }
  };
  absorb(LoadRecords(dir));
  if (fs::is_directory(dir)) {
    // Sorted for deterministic output regardless of directory order.
    std::vector<fs::path> subdirs;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.is_directory()) subdirs.push_back(entry.path());
    }
    std::sort(subdirs.begin(), subdirs.end());
    for (const fs::path& sub : subdirs) absorb(LoadRecords(sub.string()));
  }
  return samples;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

int Main(int argc, char** argv) {
  CliArgs args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  const std::map<std::string, std::vector<double>> baseline_runs =
      LoadBaselineRuns(args.old_dir);
  const std::map<std::string, double> new_records = LoadRecords(args.new_dir);
  if (baseline_runs.empty()) {
    std::fprintf(stderr, "no usable BENCH_*.json records under %s\n",
                 args.old_dir.c_str());
    return 2;
  }
  if (new_records.empty()) {
    std::fprintf(stderr, "no usable BENCH_*.json records under %s\n",
                 args.new_dir.c_str());
    return 2;
  }

  TextTable table({"Bench", "Baseline", "Runs", "New", "Delta", "Status"});
  int regressions = 0;
  std::map<std::string, bool> all;
  for (const auto& [bench, runs] : baseline_runs) {
    (void)runs;
    all[bench] = true;
  }
  for (const auto& [bench, seconds] : new_records) {
    (void)seconds;
    all[bench] = true;
  }
  for (const auto& [bench, unused] : all) {
    (void)unused;
    const auto old_it = baseline_runs.find(bench);
    const auto new_it = new_records.find(bench);
    // Gated-field rows ("bench.field") are unitless values, not seconds:
    // formatted without the unit and regressed in their field's direction
    // (throughputs invert, overhead ratios don't). The min-seconds noise
    // gate does not apply to them (their parent bench's wall time already
    // decides whether the run was real).
    const bool gated_row = IsGatedFieldRecord(bench);
    const bool higher_better = gated_row && IsHigherBetter(bench);
    const auto format_value = [&](char* buf, std::size_t size, double v) {
      if (gated_row) {
        std::snprintf(buf, size, "%.3g", v);
      } else {
        std::snprintf(buf, size, "%.3fs", v);
      }
    };
    char old_cell[32] = "-";
    char runs_cell[16] = "-";
    char new_cell[32] = "-";
    char delta_cell[32] = "-";
    const char* status = "ok";
    if (old_it == baseline_runs.end()) {
      format_value(new_cell, sizeof(new_cell), new_it->second);
      status = "new";
    } else if (new_it == new_records.end()) {
      format_value(old_cell, sizeof(old_cell), Median(old_it->second));
      std::snprintf(runs_cell, sizeof(runs_cell), "%zu",
                    old_it->second.size());
      status = "removed";
    } else {
      const double old_s = Median(old_it->second);
      const double new_s = new_it->second;
      format_value(old_cell, sizeof(old_cell), old_s);
      std::snprintf(runs_cell, sizeof(runs_cell), "%zu",
                    old_it->second.size());
      format_value(new_cell, sizeof(new_cell), new_s);
      if (old_s > 0) {
        std::snprintf(delta_cell, sizeof(delta_cell), "%+.1f%%",
                      100.0 * (new_s - old_s) / old_s);
      }
      const auto override_it = args.threshold_overrides.find(bench);
      const double threshold = override_it != args.threshold_overrides.end()
                                   ? override_it->second
                                   : args.threshold;
      const bool measurable =
          gated_row || old_s >= args.min_seconds || new_s >= args.min_seconds;
      const bool worse = higher_better ? new_s * (1.0 + threshold) < old_s
                                       : new_s > old_s * (1.0 + threshold);
      const bool better = higher_better ? new_s > old_s * (1.0 + threshold)
                                        : old_s > new_s * (1.0 + threshold);
      if (measurable && worse) {
        status = "REGRESSED";
        ++regressions;
      } else if (measurable && better) {
        status = "faster";
      } else if (!measurable) {
        status = "noise";
      }
    }
    table.AddRow()
        .AddCell(bench)
        .AddCell(old_cell)
        .AddCell(runs_cell)
        .AddCell(new_cell)
        .AddCell(delta_cell)
        .AddCell(status);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\n%zu benches compared (median baseline, threshold +%.0f%%, "
              "%zu override%s, min %.3fs): %d regression%s\n",
              all.size(), 100.0 * args.threshold,
              args.threshold_overrides.size(),
              args.threshold_overrides.size() == 1 ? "" : "s",
              args.min_seconds, regressions, regressions == 1 ? "" : "s");
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace tmotif

int main(int argc, char** argv) { return tmotif::Main(argc, argv); }
